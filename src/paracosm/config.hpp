// Framework configuration knobs (paper §4 and DESIGN.md §4).
#pragma once

#include <cstdint>

#include "util/hw_topo.hpp"

namespace paracosm::engine {

/// Inner-update scheduling strategy.
enum class Scheduler : std::uint8_t {
  /// The paper's Algorithm 2: one concurrent queue, idle-triggered
  /// re-splitting.
  kCentralQueue,
  /// Per-worker deques with stealing (see steal_executor.hpp); often faster
  /// when updates produce plentiful fan-out.
  kWorkStealing,
};

/// Semantics of the inter-update batch executor.
enum class BatchMode : std::uint8_t {
  /// Paper-faithful: every update of a batch is classified against the
  /// batch-start snapshot; all safe updates are applied.
  kPaper,
  /// Default: additionally defers any update whose endpoints were already
  /// touched inside the current batch, making parallel batches provably
  /// equivalent to sequential processing (DESIGN.md §4).
  kStrict,
};

struct Config {
  /// Worker threads for both executors. 0 -> CPUs in the affinity mask
  /// (sched_getaffinity), so taskset/cgroup-restricted runs don't
  /// oversubscribe the way hardware_concurrency() would.
  unsigned threads = 0;

  /// Maximum search-tree depth at which the inner-update executor may still
  /// split a task into subtasks (SPLIT_DEPTH in Algorithm 2).
  std::uint32_t split_depth = 4;

  /// Updates per inter-update batch (k in §4.2). 0 -> same as threads.
  unsigned batch_size = 0;

  /// Enable inner-update parallelism (parallel search-tree exploration).
  bool inner_parallelism = true;

  /// Enable inter-update parallelism (classifier + batch executor).
  bool inter_parallelism = true;

  /// Dynamic task re-splitting / load balancing. Disabling reproduces the
  /// "unbalanced" baseline of the paper's Figure 10 (static seed partition).
  bool dynamic_balance = true;

  BatchMode batch_mode = BatchMode::kStrict;

  Scheduler scheduler = Scheduler::kCentralQueue;

  /// Idle-protocol knobs of the low-contention runtime (DESIGN.md §5).
  /// Spin iterations a worker hunts for stealable work before parking on the
  /// queue's condvar. Parked workers still satisfy HasIdleThreads(), so the
  /// split predicate is unaffected; the knob only trades wake latency
  /// against burned cycles on oversubscribed machines.
  std::uint32_t queue_spin_iters = 256;

  /// Spin iterations a pool worker polls the dispatch epoch before parking
  /// on the epoch futex. Larger values make back-to-back updates dispatch
  /// syscall-free; smaller values release the core sooner.
  std::uint32_t pool_spin_iters = 1024;

  /// Topology-aware runtime knobs (DESIGN.md §10).
  /// Pin each pool worker to its assigned CPU. Only takes effect when the
  /// topology came from a real sysfs tree — emulated/flat topologies carry
  /// CPU ids that may not exist, so pinning is skipped for them.
  bool pin_threads = false;

  /// Order steal victims by topology distance (SMT sibling → same node →
  /// remote, with bounded remote back-off). OFF reproduces the PR-2 flat
  /// randomized sweep — the ablation baseline.
  bool topo_aware_steal = true;

  [[nodiscard]] unsigned effective_threads() const {
    if (threads != 0) return threads;
    return util::affinity_cpu_count();
  }
  [[nodiscard]] unsigned effective_batch_size() const noexcept {
    return batch_size != 0 ? batch_size : effective_threads();
  }
};

}  // namespace paracosm::engine
