#include "paracosm/multi_query.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "obs/trace_ring.hpp"
#include "paracosm/shard_cursor.hpp"
#include "util/timer.hpp"

namespace paracosm::engine {

using graph::GraphUpdate;
using graph::Label;
using graph::UpdateOp;
using graph::VertexId;

namespace {

[[nodiscard]] bool deadline_expired(util::Clock::time_point deadline) {
  return deadline != util::Clock::time_point{} && util::Clock::now() >= deadline;
}

}  // namespace

// ---------------------------------------------------------------------------
// TouchedSet

void MultiQueryEngine::TouchedSet::prepare(const std::size_t expected_inserts) {
  // Cap the load factor at 1/2: with 4x slots the linear probe always
  // terminates and stays short.
  const std::size_t want =
      std::bit_ceil(std::max<std::size_t>(16, expected_inserts * 4));
  if (want > keys_.size()) {
    keys_.assign(want, 0);
    stamps_.assign(want, 0);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {  // wrap: invalidate stale stamps from 2^32 batches ago
    std::fill(stamps_.begin(), stamps_.end(), 0);
    epoch_ = 1;
  }
}

bool MultiQueryEngine::TouchedSet::contains(const VertexId v) const noexcept {
  const std::size_t mask = keys_.size() - 1;
  for (std::size_t i = (v * 0x9E3779B9u) & mask;; i = (i + 1) & mask) {
    if (stamps_[i] != epoch_) return false;
    if (keys_[i] == v) return true;
  }
}

void MultiQueryEngine::TouchedSet::insert(const VertexId v) noexcept {
  const std::size_t mask = keys_.size() - 1;
  for (std::size_t i = (v * 0x9E3779B9u) & mask;; i = (i + 1) & mask) {
    if (stamps_[i] != epoch_) {
      stamps_[i] = epoch_;
      keys_[i] = v;
      return;
    }
    if (keys_[i] == v) return;
  }
}

// ---------------------------------------------------------------------------
// Registration

namespace {

// Same wiring as ParaCosm's ctor: the pool member precedes the executor, so
// the victim table pointer stays valid for the queue's lifetime.
[[nodiscard]] PoolOptions mq_pool_options(const Config& config) {
  PoolOptions o;
  o.spin_iters = config.pool_spin_iters;
  o.pin = config.pin_threads;
  return o;
}

[[nodiscard]] QueueKnobs mq_queue_knobs(const Config& config,
                                        const WorkerPool& pool) {
  QueueKnobs k;
  k.spin_iters = config.queue_spin_iters;
  k.victims = &pool.victim_table();
  k.topo_order = config.topo_aware_steal;
  return k;
}

}  // namespace

MultiQueryEngine::MultiQueryEngine(graph::DataGraph& g, Config config)
    : g_(g),
      config_(config),
      pool_(config.effective_threads(), mq_pool_options(config)),
      inner_(pool_, config.split_depth, config.dynamic_balance,
             mq_queue_knobs(config, pool_)) {}

std::size_t MultiQueryEngine::acquire_group(const graph::QueryGraph& q,
                                            const bool ignore_edge_labels) {
  const std::string key =
      (ignore_edge_labels ? "w|" : "e|") + canonical_query_key(q);
  if (const auto it = group_by_key_.find(key); it != group_by_key_.end()) {
    ++groups_[it->second].refs;
    return it->second;
  }
  std::size_t gid;
  if (!free_groups_.empty()) {
    gid = free_groups_.back();
    free_groups_.pop_back();
  } else {
    gid = groups_.size();
    groups_.emplace_back();
  }
  ClassifyGroup& grp = groups_[gid];
  grp.key = key;
  grp.ignore_edge_labels = ignore_edge_labels;
  grp.deg_pairs.clear();
  // Both orientations, mirroring QueryGraph::matching_edges: the stored
  // (deg(u1), deg(u2)) pairs are exactly what classifier stage 2 compares.
  for (const graph::Edge& e : q.edges()) {
    const Label la = q.label(e.u), lb = q.label(e.v);
    const std::uint32_t da = q.degree(e.u), db = q.degree(e.v);
    if (ignore_edge_labels) {
      grp.deg_pairs[QueryIndex::pack_pair(la, lb)].emplace_back(da, db);
      grp.deg_pairs[QueryIndex::pack_pair(lb, la)].emplace_back(db, da);
    } else {
      grp.deg_pairs[QueryIndex::pack(la, lb, e.elabel)].emplace_back(da, db);
      grp.deg_pairs[QueryIndex::pack(lb, la, e.elabel)].emplace_back(db, da);
    }
  }
  grp.refs = 1;
  grp.active = true;
  group_by_key_[key] = gid;
  return gid;
}

void MultiQueryEngine::release_group(const std::size_t group_id) {
  ClassifyGroup& grp = groups_[group_id];
  if (--grp.refs > 0) return;
  group_by_key_.erase(grp.key);
  grp = ClassifyGroup{};
  free_groups_.push_back(group_id);
}

std::size_t MultiQueryEngine::add_query(const std::string_view algorithm,
                                        graph::QueryGraph query, QueryOptions opts) {
  auto alg = csm::make_algorithm(algorithm);
  if (!alg)
    throw std::invalid_argument("MultiQueryEngine: unknown algorithm " +
                                std::string(algorithm));

  std::size_t handle;
  if (!free_slots_.empty()) {
    handle = free_slots_.back();
    free_slots_.pop_back();
  } else {
    handle = slots_.size();
    slots_.emplace_back();
  }

  // Sharing key: queries equal under label-preserving isomorphism with the
  // same algorithm and budget collapse into one evaluation class (budgets
  // must match — a shared search is truncated identically for all members).
  std::size_t class_id = classes_.size();
  std::string share_key;
  if (shared_eval_) {
    share_key = std::string(algorithm) + "|" + std::to_string(opts.budget_us) +
                "|" + canonical_query_key(query);
    if (const auto it = class_by_key_.find(share_key); it != class_by_key_.end())
      class_id = it->second;
  }

  if (class_id == classes_.size()) {
    const bool ignore = !alg->uses_edge_labels();
    if (!free_classes_.empty()) {
      class_id = free_classes_.back();
      free_classes_.pop_back();
    } else {
      class_id = classes_.size();
      classes_.emplace_back();
    }
    EvalClass& cls = classes_[class_id];
    cls.query = std::make_unique<graph::QueryGraph>(std::move(query));
    cls.algorithm = std::move(alg);
    cls.algorithm->attach(*cls.query, g_);
    cls.classifier =
        std::make_unique<UpdateClassifier>(*cls.query, g_, *cls.algorithm);
    cls.members.clear();
    cls.share_key = share_key;
    cls.budget_us = opts.budget_us;
    cls.ignore_edge_labels = ignore;
    cls.has_ads = cls.algorithm->has_ads();
    cls.active = true;
    cls.group_id = acquire_group(*cls.query, ignore);
    index_.add_class(class_id, *cls.query, ignore);
    anchors_.add_class(class_id, *cls.query, ignore);
    if (!share_key.empty()) class_by_key_[share_key] = class_id;
    ++active_classes_;
  }

  classes_[class_id].members.push_back(handle);
  slots_[handle] = Slot{true, class_id};
  ++active_queries_;
  return handle;
}

bool MultiQueryEngine::remove_query(const std::size_t handle) {
  if (handle >= slots_.size() || !slots_[handle].active) return false;
  const std::size_t class_id = slots_[handle].class_id;
  EvalClass& cls = classes_[class_id];
  std::erase(cls.members, handle);
  slots_[handle].active = false;
  free_slots_.push_back(handle);
  --active_queries_;
  if (cls.members.empty()) {
    index_.remove_class(class_id, *cls.query, cls.ignore_edge_labels);
    anchors_.remove_class(class_id, *cls.query, cls.ignore_edge_labels);
    release_group(cls.group_id);
    if (!cls.share_key.empty()) class_by_key_.erase(cls.share_key);
    cls = EvalClass{};
    free_classes_.push_back(class_id);
    --active_classes_;
  }
  return true;
}

void MultiQueryEngine::ensure_scratch(const unsigned nthreads) {
  if (scratch_.size() < nthreads) scratch_.resize(nthreads);
  for (ClassifyScratch& s : scratch_) {
    if (s.group_epoch.size() < groups_.size()) {
      s.group_epoch.resize(groups_.size(), 0);
      s.group_feasible.resize(groups_.size(), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Shared classification

bool MultiQueryEngine::group_degree_feasible(const ClassifyGroup& grp,
                                             const Label lu, const Label lv,
                                             const Label le, const std::uint32_t du,
                                             const std::uint32_t dv) {
  const std::uint64_t key = grp.ignore_edge_labels
                                ? QueryIndex::pack_pair(lu, lv)
                                : QueryIndex::pack(lu, lv, le);
  const auto it = grp.deg_pairs.find(key);
  if (it == grp.deg_pairs.end()) return false;
  for (const auto& [need_u, need_v] : it->second)
    if (du >= need_u && dv >= need_v) return true;
  return false;
}

bool MultiQueryEngine::classify_shared(const GraphUpdate& upd, ClassifyScratch& s,
                                       QueryBitmap* need) const {
#if defined(PARACOSM_TRACE_ENABLED)
  const bool traced =
      obs::trace_level() >= obs::event_level(obs::EventKind::kMultiClassify);
  const std::int64_t t0 = traced ? obs::now_ns() : 0;
  std::size_t traced_candidates = 0;
#endif
  MultiQueryStats& mq = s.mq;
  ++mq.updates_classified;

  // Structural screens, evaluated once for all queries (each would make
  // every per-query classifier return kUnsafe).
  const auto all_unsafe = [&] {
    if (need)
      for (std::size_t c = 0; c < classes_.size(); ++c)
        if (classes_[c].active) need->set(c);
    return false;
  };
  const auto finish = [&](const bool verdict) {
#if defined(PARACOSM_TRACE_ENABLED)
    if (traced)
      obs::trace_complete(obs::EventKind::kMultiClassify, t0, traced_candidates,
                          upd.u, upd.v);
#endif
    return verdict;
  };

  if (!upd.is_edge_op()) return finish(active_queries_ == 0 || all_unsafe());
  if (!g_.has_vertex(upd.u) || !g_.has_vertex(upd.v) || upd.u == upd.v)
    return finish(active_queries_ == 0 || all_unsafe());
  const bool insert = upd.op == UpdateOp::kInsertEdge;
  if (insert == g_.has_edge(upd.u, upd.v))
    return finish(active_queries_ == 0 || all_unsafe());
  if (active_queries_ == 0) return finish(true);

  // Deletion requests may omit the edge label; resolve once (the per-query
  // classifiers each re-derive this — see classifier.cpp).
  GraphUpdate eff = upd;
  if (!insert) {
    const auto actual_label = g_.edge_label(upd.u, upd.v);
    if (!actual_label) return finish(all_unsafe());
    eff.label = *actual_label;
  }

  // Tier 1: one index probe. Classes outside the bitmap have no query edge
  // with this label triple — kSafeLabel for every member, no dispatch.
  const Label lu = g_.label(eff.u), lv = g_.label(eff.v);
  s.candidates.reset();
  ++mq.index_probes;
  index_.probe(lu, lv, eff.label, s.candidates);

  if (++s.epoch == 0) {  // group-memo epoch wrap
    std::fill(s.group_epoch.begin(), s.group_epoch.end(), 0);
    s.epoch = 1;
  }

  const std::uint32_t du = g_.degree(eff.u) + (insert ? 1 : 0);
  const std::uint32_t dv = g_.degree(eff.v) + (insert ? 1 : 0);

  bool safe_all = true;
  std::size_t settled_members = 0;
  std::size_t candidate_classes = 0;
  s.candidates.for_each_set([&](const std::size_t c) {
    const EvalClass& cls = classes_[c];
    if (!cls.active) return;
    ++candidate_classes;
    settled_members += cls.members.size();
    // Verdict per class, mirroring UpdateClassifier::classify_impl for a
    // non-empty stage 1: for index-free algorithms a failed degree filter is
    // decisive (kSafeDegree); otherwise stage 3 decides.
    bool safe;
    if (cls.has_ads) {
      ++mq.ads_checks;
      safe = cls.algorithm->ads_safe(eff);
    } else {
      bool feasible;
      if (s.group_epoch[cls.group_id] == s.epoch) {  // tier 2: memoized
        feasible = s.group_feasible[cls.group_id] != 0;
        ++mq.group_hits;
      } else {
        feasible =
            group_degree_feasible(groups_[cls.group_id], lu, lv, eff.label, du, dv);
        s.group_epoch[cls.group_id] = s.epoch;
        s.group_feasible[cls.group_id] = feasible ? 1 : 0;
        ++mq.group_checks;
      }
      if (!feasible) {
        safe = true;  // kSafeDegree
      } else {
        ++mq.ads_checks;
        safe = cls.algorithm->ads_safe(eff);
      }
    }
    if (!safe) {
      safe_all = false;
      if (need) need->set(c);
    }
  });
  if (candidate_classes == 0) ++mq.index_empty;
  mq.verdicts_grouped += settled_members;
  mq.verdicts_by_index += active_queries_ - settled_members;
#if defined(PARACOSM_TRACE_ENABLED)
  traced_candidates = candidate_classes;
#endif
  return finish(safe_all);
}

bool MultiQueryEngine::safe_for_all_legacy(const GraphUpdate& upd) const {
  for (const EvalClass& cls : classes_)
    if (cls.active && !is_safe(cls.classifier->classify(upd))) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Application

void MultiQueryEngine::apply_safe(const GraphUpdate& upd) {
  if (upd.op == UpdateOp::kInsertEdge) {
    g_.add_edge(upd.u, upd.v, upd.label);
    for (EvalClass& cls : classes_)
      if (cls.active) cls.algorithm->on_edge_inserted(upd);
  } else {
    const auto removed = g_.remove_edge(upd.u, upd.v);
    if (removed) {
      GraphUpdate applied = upd;
      applied.label = *removed;
      for (EvalClass& cls : classes_)
        if (cls.active) cls.algorithm->on_edge_removed(applied);
    }
  }
}

MultiQueryEngine::SearchOutcome MultiQueryEngine::search_class(
    EvalClass& cls, const GraphUpdate& eff, const util::Clock::time_point deadline,
    MultiStreamResult& result) {
  std::vector<csm::SearchTask> seeds;
  cls.algorithm->seeds(eff, seeds);
  if (seeds.empty()) return {};

  // Per-query budget isolation: the class searches under the tighter of the
  // global deadline and its own budget. A budget-cut search is *degraded*
  // (partial ΔM for this update, members flagged), not a stream timeout.
  util::Clock::time_point class_deadline = deadline;
  bool budgeted = false;
  if (cls.budget_us > 0) {
    const util::Clock::time_point d =
        util::Clock::now() + std::chrono::microseconds(cls.budget_us);
    if (deadline == util::Clock::time_point{} || d < deadline) {
      class_deadline = d;
      budgeted = true;
    }
  }

  std::uint64_t matches;
  bool timed;
  if (config_.inner_parallelism) {
    InnerRunResult run = inner_.run(*cls.algorithm, std::move(seeds), class_deadline);
    result.stats.merge(run.stats);
    matches = run.matches;
    timed = run.timed_out;
  } else {
    util::ThreadCpuTimer timer;
    csm::MatchSink sink;
    sink.deadline = class_deadline;
    for (const auto& task : seeds) {
      cls.algorithm->expand(task, sink, nullptr);
      if (sink.stopped()) break;
    }
    result.stats.serial_ns += timer.elapsed_ns();
    matches = sink.matches;
    timed = sink.timed_out();
  }
  if (!timed) return {matches, false, false};
  if (budgeted && !deadline_expired(deadline)) return {matches, true, false};
  return {matches, false, true};
}

void MultiQueryEngine::run_searches(const GraphUpdate& eff, const bool positive,
                                    const util::Clock::time_point deadline,
                                    MultiStreamResult& result) {
  // Tier 3 gate: a class none of whose shared seed anchors pass cannot gain
  // or lose a match through this edge — skip its search outright. For
  // insertions the endpoints' signatures already include the new edge (we
  // run after add_edge); for deletions the edge is still present.
  const bool use_anchors = shared_eval_;
  if (use_anchors) {
    anchor_scratch_.reset();
    anchors_.filter(g_.label(eff.u), g_.label(eff.v), eff.label,
                    g_.nlf_signature(eff.u), g_.nlf_signature(eff.v),
                    anchor_scratch_, result.mq.anchors_checked);
  }
  std::vector<std::uint64_t>& out = positive ? result.positive : result.negative;
  need_scratch_.for_each_set([&](const std::size_t c) {
    EvalClass& cls = classes_[c];
    if (!cls.active) return;
    if (use_anchors && !anchor_scratch_.test(c)) {
      ++result.mq.searches_skipped;
      return;
    }
#if defined(PARACOSM_TRACE_ENABLED)
    const bool traced =
        obs::trace_level() >= obs::event_level(obs::EventKind::kMultiSearch);
    const std::int64_t t0 = traced ? obs::now_ns() : 0;
#endif
    const SearchOutcome outcome = search_class(cls, eff, deadline, result);
#if defined(PARACOSM_TRACE_ENABLED)
    if (traced)
      obs::trace_complete(obs::EventKind::kMultiSearch, t0, c, cls.members.size(),
                          outcome.matches);
#endif
    ++result.mq.searches_run;
    result.mq.searches_shared += cls.members.size() - 1;
    for (const std::size_t m : cls.members) {
      out[m] += outcome.matches;
      if (outcome.degraded) ++result.degraded[m];
    }
    result.timed_out = result.timed_out || outcome.timed_out;
  });
}

void MultiQueryEngine::process_unsafe(const GraphUpdate& upd,
                                      const util::Clock::time_point deadline,
                                      MultiStreamResult& result) {
  // Vertex operations: trivial for matching; keep graph + indexes aligned.
  if (upd.op == UpdateOp::kInsertVertex) {
    const bool existed = g_.has_vertex(upd.u);
    g_.add_vertex_with_id(upd.u, upd.label);
    if (!existed)
      for (EvalClass& cls : classes_)
        if (cls.active) cls.algorithm->on_vertex_added(upd.u);
    return;
  }
  if (upd.op == UpdateOp::kRemoveVertex) {
    if (!g_.has_vertex(upd.u)) return;
    std::vector<GraphUpdate> removals;
    for (const auto& nb : g_.neighbors(upd.u))
      removals.push_back(GraphUpdate::remove_edge(upd.u, nb.v, nb.elabel));
    for (const GraphUpdate& rm : removals) process_unsafe(rm, deadline, result);
    g_.remove_vertex(upd.u);
    for (EvalClass& cls : classes_)
      if (cls.active) cls.algorithm->on_vertex_removed(upd.u);
    return;
  }

  const bool insert = upd.op == UpdateOp::kInsertEdge;

  // Resolve the actual edge label before seeding — deletion requests may
  // omit it (see csm/engine.cpp).
  GraphUpdate eff = upd;
  if (!insert) {
    const auto actual_label = g_.edge_label(upd.u, upd.v);
    if (!actual_label) return;
    eff.label = *actual_label;
  }

  // Which classes must search. Phase-1 verdicts are computed against the
  // pre-batch state and can be stale once the safe prefix is applied (a
  // prefix update may have changed an endpoint's degree or ADS state), so
  // the shared classification is re-run fresh here. In the independent-loop
  // baseline every class searches, as the original engine did.
  need_scratch_.reset();
  bool need_any = false;
  if (shared_eval_) {
    ensure_scratch(1);
    classify_shared(upd, scratch_.front(), &need_scratch_);
    need_any = need_scratch_.any();
  } else {
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      if (classes_[c].active) {
        need_scratch_.set(c);
        need_any = true;
      }
    }
  }

  if (insert) {
    if (!g_.add_edge(upd.u, upd.v, upd.label)) return;
    for (EvalClass& cls : classes_)
      if (cls.active) cls.algorithm->on_edge_inserted(upd);
    if (need_any) run_searches(eff, /*positive=*/true, deadline, result);
  } else {
    if (need_any) run_searches(eff, /*positive=*/false, deadline, result);
    g_.remove_edge(upd.u, upd.v);
    for (EvalClass& cls : classes_)
      if (cls.active) cls.algorithm->on_edge_removed(eff);
  }
}

// ---------------------------------------------------------------------------
// Stream loop

MultiStreamResult MultiQueryEngine::process_stream(
    const std::span<const GraphUpdate> stream, const util::Clock::time_point deadline) {
  MultiStreamResult result;
  result.positive.assign(slots_.size(), 0);
  result.negative.assign(slots_.size(), 0);
  result.degraded.assign(slots_.size(), 0);
  const unsigned nthreads = pool_.size();
  result.stats.ensure_size(nthreads);
  ensure_scratch(nthreads);

  const unsigned k = config_.effective_batch_size();
  std::size_t i = 0;
  while (i < stream.size()) {
    if (deadline_expired(deadline)) {
      result.timed_out = true;
      break;
    }
    const std::size_t count = std::min<std::size_t>(k, stream.size() - i);

    // Phase 1 — parallel combined classification (one shared pass per
    // update instead of one classifier call per query).
    if (safe_.size() < count) safe_.resize(count);
    std::fill(safe_.begin(), safe_.begin() + static_cast<std::ptrdiff_t>(count), 0);
    if (nthreads > 1 && count > 1) {
      pool_.run([&](unsigned wid) {
        util::ThreadCpuTimer timer;
        ClassifyScratch& s = scratch_[wid];
        for (std::size_t j = wid; j < count; j += nthreads)
          safe_[j] = (shared_eval_ ? classify_shared(stream[i + j], s, nullptr)
                                   : safe_for_all_legacy(stream[i + j]))
                         ? 1
                         : 0;
        result.stats.workers[wid].busy_ns += timer.elapsed_ns();
      });
      result.stats.dispatch_ns += pool_.last_dispatch_ns();
    } else {
      util::ThreadCpuTimer timer;
      ClassifyScratch& s = scratch_.front();
      for (std::size_t j = 0; j < count; ++j)
        safe_[j] = (shared_eval_ ? classify_shared(stream[i + j], s, nullptr)
                                 : safe_for_all_legacy(stream[i + j]))
                       ? 1
                       : 0;
      result.stats.serial_ns += timer.elapsed_ns();
    }

    // Phase 2 — strict-mode safe prefix, applied in parallel.
    touched_.prepare(2 * count);
    std::size_t prefix = 0;
    bool hit_unsafe = false;
    while (prefix < count) {
      const GraphUpdate& upd = stream[i + prefix];
      if (!safe_[prefix]) {
        hit_unsafe = true;
        break;
      }
      if (upd.is_edge_op() &&
          (touched_.contains(upd.u) || touched_.contains(upd.v)))
        break;
      if (upd.is_edge_op()) {
        touched_.insert(upd.u);
        touched_.insert(upd.v);
      }
      ++prefix;
    }
    if (prefix > 0) {
      if (nthreads > 1 && prefix > 1) {
        ShardedCursor cursor(prefix, nthreads, pool_.node_map());
        pool_.run([&](unsigned wid) {
          util::ThreadCpuTimer timer;
          std::uint64_t applied = 0;
          for (std::size_t j = cursor.claim(wid); j != ShardedCursor::npos;
               j = cursor.claim(wid)) {
            const GraphUpdate& upd = stream[i + j];
            locks_.lock_pair(upd.u, upd.v);
            apply_safe(upd);
            locks_.unlock_pair(upd.u, upd.v);
            ++applied;
          }
          WorkerStats& ws = result.stats.workers[wid];
          ws.busy_ns += timer.elapsed_ns();
          ws.shard_updates += applied;
        });
        result.stats.dispatch_ns += pool_.last_dispatch_ns();
      } else {
        util::ThreadCpuTimer timer;
        for (std::size_t j = 0; j < prefix; ++j) apply_safe(stream[i + j]);
        result.stats.serial_ns += timer.elapsed_ns();
      }
      result.safe_applied += prefix;
      result.updates_processed += prefix;
    }
    i += prefix;

    if (hit_unsafe) {
      ++result.unsafe_sequential;
      process_unsafe(stream[i], deadline, result);
      ++result.updates_processed;
      ++i;
    }
  }

  for (ClassifyScratch& s : scratch_) {
    result.mq.merge(s.mq);
    s.mq = MultiQueryStats{};
  }
  return result;
}

}  // namespace paracosm::engine
