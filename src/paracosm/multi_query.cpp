#include "paracosm/multi_query.hpp"

#include <unordered_set>

#include "paracosm/shard_cursor.hpp"
#include "util/timer.hpp"

namespace paracosm::engine {

using graph::GraphUpdate;
using graph::UpdateOp;
using graph::VertexId;

MultiQueryEngine::MultiQueryEngine(graph::DataGraph& g, Config config)
    : g_(g),
      config_(config),
      pool_(config.effective_threads(), config.pool_spin_iters),
      inner_(pool_, config.split_depth, config.dynamic_balance,
             QueueKnobs{config.queue_spin_iters}) {}

std::size_t MultiQueryEngine::add_query(std::string_view algorithm,
                                        graph::QueryGraph query) {
  Registered reg;
  reg.query = std::make_unique<graph::QueryGraph>(std::move(query));
  reg.algorithm = csm::make_algorithm(algorithm);
  if (!reg.algorithm)
    throw std::invalid_argument("MultiQueryEngine: unknown algorithm " +
                                std::string(algorithm));
  reg.algorithm->attach(*reg.query, g_);
  reg.classifier =
      std::make_unique<UpdateClassifier>(*reg.query, g_, *reg.algorithm);
  queries_.push_back(std::move(reg));
  return queries_.size() - 1;
}

bool MultiQueryEngine::safe_for_all(const GraphUpdate& upd) const {
  for (const Registered& reg : queries_)
    if (!is_safe(reg.classifier->classify(upd))) return false;
  return true;
}

void MultiQueryEngine::apply_safe(const GraphUpdate& upd) {
  if (upd.op == UpdateOp::kInsertEdge) {
    g_.add_edge(upd.u, upd.v, upd.label);
    for (Registered& reg : queries_) reg.algorithm->on_edge_inserted(upd);
  } else {
    const auto removed = g_.remove_edge(upd.u, upd.v);
    if (removed) {
      GraphUpdate applied = upd;
      applied.label = *removed;
      for (Registered& reg : queries_) reg.algorithm->on_edge_removed(applied);
    }
  }
}

void MultiQueryEngine::process_unsafe(const GraphUpdate& upd,
                                      util::Clock::time_point deadline,
                                      MultiStreamResult& result) {
  // Vertex operations: trivial for matching; keep graph + indexes aligned.
  if (upd.op == UpdateOp::kInsertVertex) {
    const bool existed = g_.has_vertex(upd.u);
    g_.add_vertex_with_id(upd.u, upd.label);
    if (!existed)
      for (Registered& reg : queries_) reg.algorithm->on_vertex_added(upd.u);
    return;
  }
  if (upd.op == UpdateOp::kRemoveVertex) {
    if (!g_.has_vertex(upd.u)) return;
    std::vector<GraphUpdate> removals;
    for (const auto& nb : g_.neighbors(upd.u))
      removals.push_back(GraphUpdate::remove_edge(upd.u, nb.v, nb.elabel));
    for (const GraphUpdate& rm : removals) process_unsafe(rm, deadline, result);
    g_.remove_vertex(upd.u);
    for (Registered& reg : queries_) reg.algorithm->on_vertex_removed(upd.u);
    return;
  }

  const bool insert = upd.op == UpdateOp::kInsertEdge;
  const auto search = [&](std::size_t qi, const GraphUpdate& eff) {
    Registered& reg = queries_[qi];
    std::vector<csm::SearchTask> seeds;
    reg.algorithm->seeds(eff, seeds);
    if (seeds.empty()) return std::uint64_t{0};
    if (config_.inner_parallelism) {
      InnerRunResult run = inner_.run(*reg.algorithm, std::move(seeds), deadline);
      result.stats.merge(run.stats);
      result.timed_out = result.timed_out || run.timed_out;
      return run.matches;
    }
    util::ThreadCpuTimer timer;
    csm::MatchSink sink;
    sink.deadline = deadline;
    for (const auto& task : seeds) {
      reg.algorithm->expand(task, sink, nullptr);
      if (sink.stopped()) break;
    }
    result.stats.serial_ns += timer.elapsed_ns();
    result.timed_out = result.timed_out || sink.timed_out();
    return sink.matches;
  };

  if (insert) {
    if (!g_.add_edge(upd.u, upd.v, upd.label)) return;
    for (Registered& reg : queries_) reg.algorithm->on_edge_inserted(upd);
    for (std::size_t qi = 0; qi < queries_.size(); ++qi)
      result.positive[qi] += search(qi, upd);
  } else {
    // Resolve the actual edge label before seeding — deletion requests may
    // omit it (see csm/engine.cpp).
    const auto actual_label = g_.edge_label(upd.u, upd.v);
    if (!actual_label) return;
    GraphUpdate del = upd;
    del.label = *actual_label;
    for (std::size_t qi = 0; qi < queries_.size(); ++qi)
      result.negative[qi] += search(qi, del);
    g_.remove_edge(upd.u, upd.v);
    for (Registered& reg : queries_) reg.algorithm->on_edge_removed(del);
  }
}

MultiStreamResult MultiQueryEngine::process_stream(
    std::span<const GraphUpdate> stream, util::Clock::time_point deadline) {
  MultiStreamResult result;
  result.positive.assign(queries_.size(), 0);
  result.negative.assign(queries_.size(), 0);
  const unsigned nthreads = pool_.size();
  result.stats.ensure_size(nthreads);

  const auto expired = [&] {
    return deadline != util::Clock::time_point{} && util::Clock::now() >= deadline;
  };

  const unsigned k = config_.effective_batch_size();
  std::size_t i = 0;
  std::vector<std::uint8_t> safe;
  while (i < stream.size()) {
    if (expired()) {
      result.timed_out = true;
      break;
    }
    const std::size_t count = std::min<std::size_t>(k, stream.size() - i);

    // Phase 1 — parallel combined classification.
    safe.assign(count, 0);
    if (nthreads > 1 && count > 1) {
      pool_.run([&](unsigned wid) {
        util::ThreadCpuTimer timer;
        for (std::size_t j = wid; j < count; j += nthreads)
          safe[j] = safe_for_all(stream[i + j]) ? 1 : 0;
        result.stats.workers[wid].busy_ns += timer.elapsed_ns();
      });
      result.stats.dispatch_ns += pool_.last_dispatch_ns();
    } else {
      util::ThreadCpuTimer timer;
      for (std::size_t j = 0; j < count; ++j)
        safe[j] = safe_for_all(stream[i + j]) ? 1 : 0;
      result.stats.serial_ns += timer.elapsed_ns();
    }

    // Phase 2 — strict-mode safe prefix, applied in parallel.
    std::unordered_set<VertexId> touched;
    std::size_t prefix = 0;
    bool hit_unsafe = false;
    while (prefix < count) {
      const GraphUpdate& upd = stream[i + prefix];
      if (!safe[prefix]) {
        hit_unsafe = true;
        break;
      }
      if (upd.is_edge_op() &&
          (touched.contains(upd.u) || touched.contains(upd.v)))
        break;
      if (upd.is_edge_op()) {
        touched.insert(upd.u);
        touched.insert(upd.v);
      }
      ++prefix;
    }
    if (prefix > 0) {
      if (nthreads > 1 && prefix > 1) {
        ShardedCursor cursor(prefix, nthreads);
        pool_.run([&](unsigned wid) {
          util::ThreadCpuTimer timer;
          std::uint64_t applied = 0;
          for (std::size_t j = cursor.claim(wid); j != ShardedCursor::npos;
               j = cursor.claim(wid)) {
            const GraphUpdate& upd = stream[i + j];
            locks_.lock_pair(upd.u, upd.v);
            apply_safe(upd);
            locks_.unlock_pair(upd.u, upd.v);
            ++applied;
          }
          WorkerStats& ws = result.stats.workers[wid];
          ws.busy_ns += timer.elapsed_ns();
          ws.shard_updates += applied;
        });
        result.stats.dispatch_ns += pool_.last_dispatch_ns();
      } else {
        util::ThreadCpuTimer timer;
        for (std::size_t j = 0; j < prefix; ++j) apply_safe(stream[i + j]);
        result.stats.serial_ns += timer.elapsed_ns();
      }
      result.safe_applied += prefix;
      result.updates_processed += prefix;
    }
    i += prefix;

    if (hit_unsafe) {
      ++result.unsafe_sequential;
      process_unsafe(stream[i], deadline, result);
      ++result.updates_processed;
      ++i;
    }
  }
  return result;
}

}  // namespace paracosm::engine
