// Work-stealing alternative to the paper's central-queue inner executor.
//
// ParaCOSM's Algorithm 2 routes all subtasks through one concurrent queue
// CQ with idle-triggered re-splitting. This executor runs on the SAME
// lock-free Chase–Lev substrate (task_queue.hpp) but with the classic
// stealing split policy instead: each owner keeps its own deque primed with
// a few stealable tasks while the depth budget lasts, regardless of whether
// anyone is idle yet. Owners pop LIFO (cache-friendly, deepest subtree
// first), thieves steal FIFO (largest remaining subtrees first). The
// ablation bench (`ablation_scheduler`) compares the two policies — and the
// retained mutex-queue baseline — under identical workloads.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "csm/algorithm.hpp"
#include "paracosm/stats.hpp"
#include "paracosm/task_queue.hpp"
#include "paracosm/worker_pool.hpp"
#include "util/cancel.hpp"

namespace paracosm::engine {

struct InnerRunResult;  // defined in inner_executor.hpp

class StealingExecutor {
 public:
  StealingExecutor(WorkerPool& pool, std::uint32_t split_depth,
                   QueueKnobs knobs = {});
  ~StealingExecutor();

  StealingExecutor(const StealingExecutor&) = delete;
  StealingExecutor& operator=(const StealingExecutor&) = delete;

  /// Same contract as InnerExecutor::run: explore every seed's subtree,
  /// return aggregated matches/nodes plus per-worker accounting. `on_match`
  /// is delivered after quiescence in lexicographic mapping order.
  [[nodiscard]] InnerRunResult run(
      const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
      util::Clock::time_point deadline = {},
      const std::function<void(std::span<const csm::Assignment>)>* on_match = nullptr,
      util::CancelView cancel = {});

  /// See InnerExecutor::set_split_depth — same contract.
  void set_split_depth(std::uint32_t depth) noexcept { split_depth_ = depth; }
  [[nodiscard]] std::uint32_t split_depth() const noexcept {
    return split_depth_;
  }

 private:
  WorkerPool& pool_;
  std::uint32_t split_depth_;
  std::unique_ptr<TaskQueue> queue_;  ///< persistent CQ, warm across updates
};

}  // namespace paracosm::engine
