// Work-stealing alternative to the paper's central-queue inner executor.
//
// ParaCOSM's Algorithm 2 routes all subtasks through one concurrent queue
// CQ. A classic alternative is per-worker deques with stealing: owners push
// and pop LIFO (cache-friendly, deepest subtree first), thieves steal FIFO
// (largest remaining subtrees first). The ablation bench
// (`ablation_scheduler`) compares the two under identical workloads; the
// central queue wins when updates produce few, skewed subtrees (its
// idle-triggered re-splitting targets exactly the straggler), stealing wins
// when fan-out is plentiful and queue contention dominates.
#pragma once

#include <functional>
#include <span>

#include "csm/algorithm.hpp"
#include "paracosm/stats.hpp"
#include "paracosm/worker_pool.hpp"

namespace paracosm::engine {

struct InnerRunResult;  // defined in inner_executor.hpp

class StealingExecutor {
 public:
  StealingExecutor(WorkerPool& pool, std::uint32_t split_depth) noexcept
      : pool_(pool), split_depth_(split_depth) {}

  /// Same contract as InnerExecutor::run: explore every seed's subtree,
  /// return aggregated matches/nodes plus per-worker accounting.
  [[nodiscard]] InnerRunResult run(
      const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
      util::Clock::time_point deadline = {},
      const std::function<void(std::span<const csm::Assignment>)>* on_match = nullptr);

 private:
  WorkerPool& pool_;
  std::uint32_t split_depth_;
};

}  // namespace paracosm::engine
