#include "paracosm/pattern_share.hpp"

#include <algorithm>
#include <array>

namespace paracosm::engine {

namespace {

using graph::Label;
using graph::QueryGraph;
using graph::VertexId;

[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  // splitmix64 finalizer: deterministic across platforms, so WL colors are
  // identical for isomorphic graphs wherever they were built.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// One WL round: color'(v) = hash(color(v), sorted multiset of
/// (edge label, neighbor color)).
void wl_round(const QueryGraph& q, const std::vector<std::uint64_t>& color,
              std::vector<std::uint64_t>& next) {
  const std::uint32_t n = q.num_vertices();
  std::vector<std::pair<Label, std::uint64_t>> nbrs;
  for (VertexId v = 0; v < n; ++v) {
    nbrs.clear();
    for (const graph::Neighbor& nb : q.neighbors(v))
      nbrs.emplace_back(nb.elabel, color[nb.v]);
    std::sort(nbrs.begin(), nbrs.end());
    std::uint64_t h = mix64(color[v]);
    for (const auto& [el, c] : nbrs) h = mix64(h ^ mix64(el) ^ mix64(c));
    next[v] = h;
  }
}

/// Serialize the pattern under vertex ordering `order` (order[i] = original
/// id at canonical position i).
std::string serialize(const QueryGraph& q, const std::vector<VertexId>& order) {
  const std::uint32_t n = q.num_vertices();
  std::vector<std::uint32_t> pos(n);
  for (std::uint32_t i = 0; i < n; ++i) pos[order[i]] = i;
  std::string s;
  s.reserve(8 * n + 12 * q.num_edges());
  for (std::uint32_t i = 0; i < n; ++i) {
    s += std::to_string(q.label(order[i]));
    s += ',';
  }
  s += ';';
  std::vector<std::array<std::uint32_t, 3>> edges;
  edges.reserve(q.num_edges());
  for (const graph::Edge& e : q.edges()) {
    std::uint32_t a = pos[e.u], b = pos[e.v];
    if (a > b) std::swap(a, b);
    edges.push_back({a, b, e.elabel});
  }
  std::sort(edges.begin(), edges.end());
  for (const auto& [a, b, el] : edges) {
    s += std::to_string(a);
    s += '-';
    s += std::to_string(b);
    s += ':';
    s += std::to_string(el);
    s += ',';
  }
  return s;
}

}  // namespace

std::string canonical_query_key(const QueryGraph& q) {
  const std::uint32_t n = q.num_vertices();
  if (n == 0) return "C|0;";

  // WL color refinement to a (near-)stable partition. Colors are raw hashes:
  // numerically comparable and isomorphism-invariant, which is all the
  // ordering below needs.
  std::vector<std::uint64_t> color(n), next(n);
  for (VertexId v = 0; v < n; ++v) color[v] = mix64(q.label(v));
  for (std::uint32_t round = 0; round < n; ++round) {
    wl_round(q, color, next);
    if (next == color) break;
    color.swap(next);
  }

  // Base ordering: by (color, id); equal-color runs are the orbits whose
  // permutations we enumerate.
  std::vector<VertexId> base(n);
  for (VertexId v = 0; v < n; ++v) base[v] = v;
  std::sort(base.begin(), base.end(), [&](VertexId a, VertexId b) {
    return color[a] != color[b] ? color[a] < color[b] : a < b;
  });

  std::vector<std::pair<std::uint32_t, std::uint32_t>> groups;  // [begin, end)
  std::size_t perms = 1;
  for (std::uint32_t i = 0; i < n;) {
    std::uint32_t j = i + 1;
    while (j < n && color[base[j]] == color[base[i]]) ++j;
    groups.emplace_back(i, j);
    for (std::uint32_t k = 2; k <= j - i; ++k) {
      perms *= k;
      if (perms > kCanonicalPermBudget) break;
    }
    if (perms > kCanonicalPermBudget)
      return "X|" + serialize(q, [&] {
               std::vector<VertexId> ident(n);
               for (VertexId v = 0; v < n; ++v) ident[v] = v;
               return ident;
             }());
    i = j;
  }

  // Odometer over within-group permutations; keep the lexicographically
  // minimal serialization.
  std::vector<VertexId> order = base;
  std::string best = serialize(q, order);
  for (;;) {
    // Advance: next_permutation on the first group that still has one.
    std::size_t gi = 0;
    for (; gi < groups.size(); ++gi) {
      auto [b, e] = groups[gi];
      if (std::next_permutation(order.begin() + b, order.begin() + e)) break;
      // wrapped to the sorted start; carry into the next group
    }
    if (gi == groups.size()) break;  // full cycle
    std::string s = serialize(q, order);
    if (s < best) best = std::move(s);
  }
  return "C|" + best;
}

void AnchorTable::add_anchor(Table& table, const std::uint64_t key,
                             const graph::NlfSig need_u, const graph::NlfSig need_v,
                             const std::size_t class_id) {
  std::vector<Anchor>& anchors = table[key];
  for (Anchor& a : anchors) {
    if (a.need_u == need_u && a.need_v == need_v) {
      a.classes.set(class_id);
      return;
    }
  }
  Anchor a;
  a.need_u = need_u;
  a.need_v = need_v;
  a.classes.set(class_id);
  anchors.push_back(std::move(a));
}

void AnchorTable::remove_anchor(Table& table, const std::uint64_t key,
                                const graph::NlfSig need_u, const graph::NlfSig need_v,
                                const std::size_t class_id) {
  const auto it = table.find(key);
  if (it == table.end()) return;
  std::vector<Anchor>& anchors = it->second;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    Anchor& a = anchors[i];
    if (a.need_u != need_u || a.need_v != need_v) continue;
    a.classes.clear(class_id);
    if (!a.classes.any()) {
      anchors[i] = std::move(anchors.back());
      anchors.pop_back();
    }
    break;
  }
  if (anchors.empty()) table.erase(it);
}

void AnchorTable::visit_class_anchors(const graph::QueryGraph& q,
                                      const bool ignore_edge_labels,
                                      const std::size_t class_id, const bool add) {
  for (const graph::Edge& e : q.edges()) {
    const Label la = q.label(e.u), lb = q.label(e.v);
    const graph::NlfSig sa = q.nlf_signature(e.u), sb = q.nlf_signature(e.v);
    if (ignore_edge_labels) {
      if (add) {
        add_anchor(wildcard_, QueryIndex::pack_pair(la, lb), sa, sb, class_id);
        add_anchor(wildcard_, QueryIndex::pack_pair(lb, la), sb, sa, class_id);
      } else {
        remove_anchor(wildcard_, QueryIndex::pack_pair(la, lb), sa, sb, class_id);
        remove_anchor(wildcard_, QueryIndex::pack_pair(lb, la), sb, sa, class_id);
      }
    } else {
      if (add) {
        add_anchor(exact_, QueryIndex::pack(la, lb, e.elabel), sa, sb, class_id);
        add_anchor(exact_, QueryIndex::pack(lb, la, e.elabel), sb, sa, class_id);
      } else {
        remove_anchor(exact_, QueryIndex::pack(la, lb, e.elabel), sa, sb, class_id);
        remove_anchor(exact_, QueryIndex::pack(lb, la, e.elabel), sb, sa, class_id);
      }
    }
  }
}

void AnchorTable::add_class(const std::size_t class_id, const graph::QueryGraph& q,
                            const bool ignore_edge_labels) {
  visit_class_anchors(q, ignore_edge_labels, class_id, /*add=*/true);
}

void AnchorTable::remove_class(const std::size_t class_id, const graph::QueryGraph& q,
                               const bool ignore_edge_labels) {
  visit_class_anchors(q, ignore_edge_labels, class_id, /*add=*/false);
}

void AnchorTable::filter(const Label lu, const Label lv, const Label le,
                         const graph::NlfSig sig_u, const graph::NlfSig sig_v,
                         QueryBitmap& passing, std::uint64_t& checked) const {
  const auto check = [&](const Table& table, const std::uint64_t key) {
    const auto it = table.find(key);
    if (it == table.end()) return;
    for (const Anchor& a : it->second) {
      ++checked;
      if (graph::nlf_sig_covers(sig_u, a.need_u) &&
          graph::nlf_sig_covers(sig_v, a.need_v))
        passing.or_with(a.classes);
    }
  };
  check(exact_, QueryIndex::pack(lu, lv, le));
  check(wildcard_, QueryIndex::pack_pair(lu, lv));
}

}  // namespace paracosm::engine
