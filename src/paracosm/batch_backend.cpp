#include "paracosm/batch_backend.hpp"

#include <stdexcept>
#include <string>

#include "graph/nlf_signature.hpp"
#include "obs/trace_ring.hpp"
#include "paracosm/shard_cursor.hpp"
#include "util/timer.hpp"

namespace paracosm::engine {

// The restated constant in the dependency-free kernel header must be the
// real signature guard (see wide_ops.hpp).
static_assert(util::wide::kSigGuard == graph::kNlfSigGuard);

using graph::GraphUpdate;
using graph::UpdateOp;

void BatchBackend::apply_one(const GraphUpdate& upd) {
  if (upd.op == UpdateOp::kInsertEdge) {
    b_.graph->add_edge(upd.u, upd.v, upd.label);
    b_.alg->on_edge_inserted(upd);  // counter-cache deltas only; no flips by proof
  } else {
    const auto removed = b_.graph->remove_edge(upd.u, upd.v);
    if (removed) {
      GraphUpdate applied = upd;
      applied.label = *removed;
      b_.alg->on_edge_removed(applied);
    }
  }
}

void BatchBackend::apply_safe_prefix(std::span<const GraphUpdate> prefix,
                                     ParallelStats& stats) {
  const unsigned nthreads = b_.pool->size();
  if (nthreads > 1 && prefix.size() > 1) {
    stats.ensure_size(nthreads);
    ShardedCursor cursor(prefix.size(), nthreads, b_.pool->node_map());
    b_.pool->run([&](unsigned wid) {
      util::ThreadCpuTimer timer;
      std::uint64_t applied = 0;
      for (std::size_t j = cursor.claim(wid); j != ShardedCursor::npos;
           j = cursor.claim(wid)) {
        const GraphUpdate& upd = prefix[j];
        b_.locks->lock_pair(upd.u, upd.v);
        apply_one(upd);
        b_.locks->unlock_pair(upd.u, upd.v);
        PARACOSM_TRACE_INSTANT(obs::EventKind::kSafeApply, upd.u, upd.v);
        ++applied;
      }
      WorkerStats& ws = stats.workers[wid];
      ws.busy_ns += timer.elapsed_ns();
      ws.shard_updates += applied;
    });
    stats.dispatch_ns += b_.pool->last_dispatch_ns();
  } else {
    util::ThreadCpuTimer timer;
    for (const GraphUpdate& upd : prefix) {
      apply_one(upd);
      PARACOSM_TRACE_INSTANT(obs::EventKind::kSafeApply, upd.u, upd.v);
    }
    stats.serial_ns += timer.elapsed_ns();
  }
}

void BatchBackend::count_verdicts(std::span<const UpdateClass> verdicts) noexcept {
  ++stats_.batches;
  stats_.lanes += verdicts.size();
  for (const UpdateClass c : verdicts) {
    switch (c) {
      case UpdateClass::kSafeLabel: ++stats_.safe_label; break;
      case UpdateClass::kSafeDegree: ++stats_.safe_degree; break;
      case UpdateClass::kSafeAds: ++stats_.safe_ads; break;
      case UpdateClass::kSafeInvariant: break;  // never produced by a backend
      case UpdateClass::kUnsafe: ++stats_.unsafe_lanes; break;
    }
  }
}

void CpuBackend::classify_batch(std::span<const GraphUpdate> batch,
                                std::span<UpdateClass> verdicts,
                                ParallelStats& stats) {
#if defined(PARACOSM_TRACE_ENABLED)
  const std::int64_t trace_t0 = obs::trace_level() >= 1 ? obs::now_ns() : 0;
#endif
  const std::size_t count = batch.size();
  const unsigned nthreads = b_.pool->size();
  if (nthreads > 1 && count > 1) {
    stats.ensure_size(nthreads);
    b_.pool->run([&](unsigned wid) {
      util::ThreadCpuTimer timer;
      for (std::size_t j = wid; j < count; j += nthreads)
        verdicts[j] = b_.classifier->classify(batch[j]);
      stats.workers[wid].busy_ns += timer.elapsed_ns();
    });
    stats.dispatch_ns += b_.pool->last_dispatch_ns();
  } else {
    util::ThreadCpuTimer timer;
    for (std::size_t j = 0; j < count; ++j)
      verdicts[j] = b_.classifier->classify(batch[j]);
    stats.serial_ns += timer.elapsed_ns();
  }
  count_verdicts(verdicts);
#if defined(PARACOSM_TRACE_ENABLED)
  if (obs::trace_level() >= 1)
    obs::trace_complete(obs::EventKind::kBatchBackend, trace_t0, 0, count, 0);
#endif
}

WideBackend::WideBackend(const BackendBind& bind, util::wide::Dispatch dispatch)
    : BatchBackend(bind) {
  avx2_ = util::wide::use_avx2(dispatch, &downgraded_);

  has_ads_ = b_.alg->has_ads();
  endpoint_local_ = !has_ads_ && b_.alg->ads_safe_endpoint_nlf();
  const bool blind = !b_.alg->uses_edge_labels();

  // Both orientations of every query edge — exactly the set
  // QueryGraph::matching_edges enumerates, so ORing per-term masks
  // reproduces the scalar stage-1/2 predicates lane for lane.
  const graph::QueryGraph& q = *b_.query;
  for (const graph::Edge& e : q.edges()) {
    for (const auto& [a, b] : {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
      util::wide::EdgeTerm t;
      t.l1 = q.label(a);
      t.l2 = q.label(b);
      t.el = e.elabel;
      t.d1 = q.degree(a);
      t.d2 = q.degree(b);
      t.sig1 = q.nlf_signature(a);
      t.sig2 = q.nlf_signature(b);
      t.blind = blind;
      terms_.push_back(t);
    }
  }
}

void WideBackend::classify_batch(std::span<const GraphUpdate> batch,
                                 std::span<UpdateClass> verdicts,
                                 ParallelStats& stats) {
#if defined(PARACOSM_TRACE_ENABLED)
  const std::int64_t trace_t0 = obs::trace_level() >= 1 ? obs::now_ns() : 0;
#endif
  const std::size_t count = batch.size();
  const std::size_t padded = util::wide::padded_lanes(count);
  const graph::DataGraph& g = *b_.graph;

  util::ThreadCpuTimer serial;

  // Gather: one scalar prepass per lane (validity + delete-label
  // resolution), then the endpoint operands as uniform uint64 columns.
  // Signatures carry the pending-edge adjustment on inserts (nlf_sig_add),
  // mirroring the scalar filters; tails stay zero per the layout contract.
  const auto reset = [padded](std::vector<std::uint64_t>& col) {
    col.assign(padded, 0);
  };
  reset(lu_); reset(lv_); reset(el_); reset(du_); reset(dv_);
  reset(sig_u_); reset(sig_v_);
  reset(any_label_); reset(any_deg_); reset(any_alive_);
  eff_.assign(count, GraphUpdate{});
  valid_.assign(count, 0);

  std::uint64_t prepass_unsafe = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const std::optional<GraphUpdate> eff = b_.classifier->effective_update(batch[j]);
    if (!eff) {
      verdicts[j] = UpdateClass::kUnsafe;
      ++prepass_unsafe;
      continue;
    }
    eff_[j] = *eff;
    valid_[j] = 1;
    const bool insert = eff->op == UpdateOp::kInsertEdge;
    const graph::Label lab_u = g.label(eff->u);
    const graph::Label lab_v = g.label(eff->v);
    lu_[j] = lab_u;
    lv_[j] = lab_v;
    el_[j] = eff->label;
    du_[j] = g.degree(eff->u) + (insert ? 1 : 0);
    dv_[j] = g.degree(eff->v) + (insert ? 1 : 0);
    graph::NlfSig su = g.nlf_signature(eff->u);
    graph::NlfSig sv = g.nlf_signature(eff->v);
    if (insert) {
      su = graph::nlf_sig_add(su, lab_v);
      sv = graph::nlf_sig_add(sv, lab_u);
    }
    sig_u_[j] = su;
    sig_v_[j] = sv;
  }

  // The wide stage: one pass per oriented query edge over all lanes.
  util::wide::LaneView view;
  view.lu = lu_.data();
  view.lv = lv_.data();
  view.el = el_.data();
  view.du = du_.data();
  view.dv = dv_.data();
  view.sig_u = sig_u_.data();
  view.sig_v = sig_v_.data();
  view.padded = padded;
  for (const util::wide::EdgeTerm& t : terms_) {
    if (avx2_)
      util::wide::edge_masks_avx2(view, t, any_label_.data(), any_deg_.data(),
                                  any_alive_.data());
    else
      util::wide::edge_masks_swar(view, t, any_label_.data(), any_deg_.data(),
                                  any_alive_.data());
  }

  // Resolve lanes from the masks; the order and outcomes replicate
  // UpdateClassifier::classify_effective exactly (see DESIGN.md §11 for the
  // case-by-case equivalence argument).
  std::uint64_t label_rejects = 0, degree_rejects = 0, swar_prerejects = 0;
  fallback_.clear();
  for (std::size_t j = 0; j < count; ++j) {
    if (!valid_[j]) continue;
    if (any_label_[j] == 0) {
      verdicts[j] = UpdateClass::kSafeLabel;  // stage 1: no label-matching edge
      ++label_rejects;
      continue;
    }
    if (!has_ads_) {
      if (any_deg_[j] == 0) {
        verdicts[j] = UpdateClass::kSafeDegree;  // stage 2 decisive, no ADS
        ++degree_rejects;
        continue;
      }
      if (endpoint_local_ && any_alive_[j] == 0) {
        // Every label/degree-surviving pair failed the signature pre-reject
        // at an endpoint, so the algorithm's endpoint-local ads_safe is
        // implied true (CsmAlgorithm::ads_safe_endpoint_nlf contract).
        verdicts[j] = UpdateClass::kSafeAds;
        ++swar_prerejects;
        continue;
      }
    }
    // ADS-bearing algorithms always consult stage 3; endpoint-local proofs
    // that did not fire need the exact per-label NLF check. Either way the
    // scalar classifier decides.
    fallback_.push_back(static_cast<std::uint32_t>(j));
  }
  stats.serial_ns += serial.elapsed_ns();

  // Scalar fallback lanes: stride them over the pool like the CPU backend.
  const unsigned nthreads = b_.pool->size();
  if (nthreads > 1 && fallback_.size() > 1) {
    stats.ensure_size(nthreads);
    b_.pool->run([&](unsigned wid) {
      util::ThreadCpuTimer timer;
      for (std::size_t t = wid; t < fallback_.size(); t += nthreads) {
        const std::uint32_t j = fallback_[t];
        verdicts[j] = b_.classifier->classify_effective(eff_[j]);
      }
      stats.workers[wid].busy_ns += timer.elapsed_ns();
    });
    stats.dispatch_ns += b_.pool->last_dispatch_ns();
  } else {
    util::ThreadCpuTimer timer;
    for (const std::uint32_t j : fallback_)
      verdicts[j] = b_.classifier->classify_effective(eff_[j]);
    stats.serial_ns += timer.elapsed_ns();
  }

#ifdef PARACOSM_VERIFY
  // Per-batch oracle diff: the scalar classifier re-judges every lane and
  // any disagreement is a hard error (the wide masks claimed a proof they
  // do not have).
  for (std::size_t j = 0; j < count; ++j) {
    const UpdateClass oracle = b_.classifier->classify(batch[j]);
    if (oracle != verdicts[j])
      throw std::logic_error(
          "PARACOSM_VERIFY: wide backend verdict diverges from the scalar "
          "classifier at lane " +
          std::to_string(j) + " (wide=" +
          std::to_string(static_cast<int>(verdicts[j])) + " cpu=" +
          std::to_string(static_cast<int>(oracle)) + ")");
  }
  ++stats_.verify_diffs;
#endif

  count_verdicts(verdicts);
  stats_.prepass_unsafe += prepass_unsafe;
  stats_.label_rejects += label_rejects;
  stats_.degree_rejects += degree_rejects;
  stats_.swar_prerejects += swar_prerejects;
  stats_.scalar_fallbacks += fallback_.size();
  if (avx2_)
    ++stats_.avx2_batches;
  else
    ++stats_.swar_batches;
  if (downgraded_) ++stats_.fallback_activations;

#if defined(PARACOSM_TRACE_ENABLED)
  if (obs::trace_level() >= 1)
    obs::trace_complete(obs::EventKind::kBatchBackend, trace_t0, 1, count,
                        prepass_unsafe + label_rejects + degree_rejects +
                            swar_prerejects);
#endif
}

std::unique_ptr<BatchBackend> make_batch_backend(BatchBackendKind kind,
                                                 const BackendBind& bind,
                                                 util::wide::Dispatch dispatch) {
  switch (kind) {
    case BatchBackendKind::kCpu:
      return std::make_unique<CpuBackend>(bind);
    case BatchBackendKind::kWide:
    case BatchBackendKind::kAuto:
      return std::make_unique<WideBackend>(bind, dispatch);
  }
  return nullptr;
}

}  // namespace paracosm::engine
