// Pre-ADS aggregate-invariant batch certifier (DESIGN.md §13.4).
//
// The stage maintains, per distinct query-edge label triple
// t = (min endpoint label, max endpoint label, edge label — 0 when the
// algorithm is edge-label-blind), two numbers:
//
//   need[t]  — how many query edges carry triple t (fixed at attach);
//   count[t] — how many data edges currently carry triple t (O(1) updates).
//
// Because vertex mappings are injective, distinct query edges map to
// distinct data edges, so a complete match requires count[t] >= need[t] for
// every t. The *whole-batch* certificate strengthens that to be stable under
// parallel application: with at most `max_inserts` edge insertions in the
// batch,
//
//   exists t : count[t] + max_inserts < need[t]
//
// implies every state reachable while the batch executes (any interleaving,
// any prefix) still has a deficient triple — the graph admits zero complete
// matches throughout, so every effective edge update in the batch has
// ΔM == 0 and is safe to apply without enumeration. The per-update variant
// ("still deficient after this one insert") is deliberately NOT used: two
// inserts certified independently against the same deficit could jointly
// fill it.
//
// Scope: only meaningful for index-free algorithms (CsmAlgorithm::has_ads()
// == false) — an ADS-bearing algorithm's auxiliary structure can change even
// when ΔM is empty — and only sound in BatchMode::kStrict, where the applied
// safe prefix cannot contain two effective ops on the same edge (the
// endpoint-touched rule), so the sequential count maintenance pass is exact.
// ParaCosm enforces both gates at construction.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"

namespace paracosm::engine {

/// Certifier counters, reported in StreamResult (conservation: when the
/// stage is attached, batches_checked == StreamResult::batches and
/// lanes_certified == ClassifierStats::safe_invariant).
struct InvariantStats {
  std::uint64_t batches_checked = 0;
  std::uint64_t batches_certified = 0;
  std::uint64_t lanes_certified = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return batches_checked == 0
               ? 0.0
               : static_cast<double>(batches_certified) /
                     static_cast<double>(batches_checked);
  }

  void merge(const InvariantStats& other) noexcept {
    batches_checked += other.batches_checked;
    batches_certified += other.batches_certified;
    lanes_certified += other.lanes_certified;
  }
};

class InvariantStage {
 public:
  struct TripleCount {
    graph::Label lmin = 0;
    graph::Label lmax = 0;
    graph::Label elabel = 0;  ///< 0 when edge-label-blind
    std::uint32_t need = 0;
    std::int64_t count = 0;
  };

  /// Builds need[] from the query and count[] with one O(E) graph scan.
  InvariantStage(const graph::QueryGraph& q, const graph::DataGraph& g,
                 bool edge_label_blind);

  /// The whole-batch certificate (see file comment). O(|distinct triples|),
  /// bounded by the query's edge count.
  [[nodiscard]] bool certify_batch(std::size_t max_inserts) const noexcept;

  /// O(1)-per-update maintenance: `delta` is +1 (edge inserted) or -1
  /// (edge removed); labels are the *data-graph* labels of the edge.
  void on_edge(graph::Label lu, graph::Label lv, graph::Label elabel,
               int delta) noexcept;

  /// Rebuild count[] from scratch (tests: incremental-vs-recomputed).
  void rebuild(const graph::DataGraph& g);

  [[nodiscard]] const std::vector<TripleCount>& triples() const noexcept {
    return triples_;
  }

 private:
  [[nodiscard]] TripleCount* find(graph::Label lu, graph::Label lv,
                                  graph::Label elabel) noexcept;

  bool edge_label_blind_;
  std::vector<TripleCount> triples_;
};

}  // namespace paracosm::engine
