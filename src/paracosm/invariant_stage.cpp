#include "paracosm/invariant_stage.hpp"

#include <algorithm>

namespace paracosm::engine {

using graph::Label;

InvariantStage::InvariantStage(const graph::QueryGraph& q,
                               const graph::DataGraph& g, bool edge_label_blind)
    : edge_label_blind_(edge_label_blind) {
  for (const graph::Edge& e : q.edges()) {
    const Label lu = q.label(e.u), lv = q.label(e.v);
    const Label lmin = std::min(lu, lv), lmax = std::max(lu, lv);
    const Label el = edge_label_blind_ ? 0 : e.elabel;
    if (TripleCount* t = find(lmin, lmax, el)) {
      ++t->need;
    } else {
      triples_.push_back({lmin, lmax, el, 1, 0});
    }
  }
  rebuild(g);
}

InvariantStage::TripleCount* InvariantStage::find(Label lu, Label lv,
                                                  Label elabel) noexcept {
  const Label lmin = std::min(lu, lv), lmax = std::max(lu, lv);
  const Label el = edge_label_blind_ ? 0 : elabel;
  for (TripleCount& t : triples_)
    if (t.lmin == lmin && t.lmax == lmax && t.elabel == el) return &t;
  return nullptr;
}

bool InvariantStage::certify_batch(std::size_t max_inserts) const noexcept {
  for (const TripleCount& t : triples_)
    if (t.count + static_cast<std::int64_t>(max_inserts) <
        static_cast<std::int64_t>(t.need))
      return true;
  return false;
}

void InvariantStage::on_edge(Label lu, Label lv, Label elabel,
                             int delta) noexcept {
  if (TripleCount* t = find(lu, lv, elabel)) t->count += delta;
}

void InvariantStage::rebuild(const graph::DataGraph& g) {
  for (TripleCount& t : triples_) t.count = 0;
  for (graph::VertexId u = 0; u < g.vertex_capacity(); ++u) {
    if (!g.has_vertex(u)) continue;
    for (const graph::Neighbor& nb : g.neighbors(u)) {
      if (nb.v < u) continue;  // count each undirected edge once
      if (TripleCount* t = find(g.label(u), g.label(nb.v), nb.elabel))
        ++t->count;
    }
  }
}

}  // namespace paracosm::engine
