// Query index (ISSUE 6 tier 1): one O(1) probe instead of Q classifier calls.
//
// Every registered evaluation class contributes the label triples of its
// pattern's edges (both orientations) to a hash map from packed
// (endpoint label, endpoint label, edge label) triples to a bitmap of class
// ids. Probing with a data edge's triple returns the classes whose stage-1
// label filter *could* match; every class whose bit is clear would have
// returned kSafeLabel from its own classifier — `matching_edges` on its
// pattern is empty for this triple — so the safe verdict is recorded without
// dispatching anything per query. This is sound for every algorithm,
// including ADS-bearing ones: the classifier's stage 1 never consults
// `ads_safe` (see classifier.cpp), so "no matching label triple" already
// implies "no ADS change and no match change".
//
// Classes whose algorithm ignores edge labels (CaLiG mode) are indexed under
// a wildcard key on the endpoint-label pair only; a probe ORs the exact and
// wildcard entries.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/query_graph.hpp"
#include "graph/types.hpp"

namespace paracosm::engine {

/// Dense bitmap over evaluation-class ids. Grows on demand; all operations
/// tolerate size mismatches (missing words read as zero).
class QueryBitmap {
 public:
  void reset() noexcept {
    for (std::uint64_t& w : words_) w = 0;
  }
  void clear_and_shrink() { words_.clear(); }

  void set(std::size_t bit) {
    const std::size_t word = bit >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= std::uint64_t{1} << (bit & 63);
  }
  void clear(std::size_t bit) noexcept {
    const std::size_t word = bit >> 6;
    if (word < words_.size()) words_[word] &= ~(std::uint64_t{1} << (bit & 63));
  }
  [[nodiscard]] bool test(std::size_t bit) const noexcept {
    const std::size_t word = bit >> 6;
    return word < words_.size() &&
           (words_[word] >> (bit & 63)) & std::uint64_t{1};
  }

  void or_with(const QueryBitmap& other) {
    if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
    for (std::size_t i = 0; i < other.words_.size(); ++i)
      words_[i] |= other.words_[i];
  }

  [[nodiscard]] bool any() const noexcept {
    for (const std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Visit every set bit in ascending order.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        const unsigned tz = static_cast<unsigned>(__builtin_ctzll(w));
        f((i << 6) + tz);
        w &= w - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

class QueryIndex {
 public:
  /// Register a class's label triples. `ignore_edge_labels` selects the
  /// wildcard table (edge-label-blind algorithms).
  void add_class(std::size_t class_id, const graph::QueryGraph& q,
                 bool ignore_edge_labels);
  /// Clear the class's bits; entries left empty are erased so the table
  /// shrinks as classes retire.
  void remove_class(std::size_t class_id, const graph::QueryGraph& q,
                    bool ignore_edge_labels);

  /// OR the candidate classes for data-edge triple (lu, lv, le) into `out`.
  /// `out` is NOT reset here (callers may accumulate).
  void probe(graph::Label lu, graph::Label lv, graph::Label le,
             QueryBitmap& out) const;

  [[nodiscard]] std::size_t num_entries() const noexcept {
    return exact_.size() + wildcard_.size();
  }

  /// Packed 21-bit-per-field triple key (labels are <= 2^20 - 1).
  [[nodiscard]] static constexpr std::uint64_t pack(graph::Label lu, graph::Label lv,
                                                    graph::Label le) noexcept {
    return static_cast<std::uint64_t>(lu) | (static_cast<std::uint64_t>(lv) << 21) |
           (static_cast<std::uint64_t>(le) << 42);
  }
  [[nodiscard]] static constexpr std::uint64_t pack_pair(graph::Label lu,
                                                         graph::Label lv) noexcept {
    return static_cast<std::uint64_t>(lu) | (static_cast<std::uint64_t>(lv) << 21);
  }

 private:
  static void add_bit(std::unordered_map<std::uint64_t, QueryBitmap>& table,
                      std::uint64_t key, std::size_t class_id);
  static void clear_bit(std::unordered_map<std::uint64_t, QueryBitmap>& table,
                        std::uint64_t key, std::size_t class_id);

  std::unordered_map<std::uint64_t, QueryBitmap> exact_;     ///< (lu, lv, le)
  std::unordered_map<std::uint64_t, QueryBitmap> wildcard_;  ///< (lu, lv, *)
};

}  // namespace paracosm::engine
