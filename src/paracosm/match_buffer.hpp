// Per-worker match sinks: the replacement for the global match_mutex.
//
// When a match callback is installed, each worker appends every full mapping
// it finds to its own MatchBuffer (a flat assignment array + end offsets — no
// per-match allocation, no shared state, no lock in the inner loop). At
// quiescence the executor merges all buffers and delivers the callbacks from
// the calling thread in LEXICOGRAPHIC order of the mapping's (query vertex,
// data vertex) pairs.
//
// Ordering contract (see also csm/match.hpp): parallel interleaving makes the
// *discovery* order nondeterministic, so the merge sorts; since ΔM is a set,
// the sorted sequence is a pure function of the match set and therefore
// byte-comparable across the sequential engine and every executor at every
// thread count — the scheduler torture tests assert exactly this.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "csm/match.hpp"
#include "util/numa_alloc.hpp"

namespace paracosm::engine {

/// One worker's private match log. Cache-line aligned so adjacent workers'
/// buffer headers never false-share.
struct alignas(64) MatchBuffer {
  std::vector<csm::Assignment> flat;  ///< concatenated mappings
  std::vector<std::uint64_t> ends;    ///< end offset of each mapping in flat

  void append(std::span<const csm::Assignment> mapping) {
    const std::size_t cap = flat.capacity();
    flat.insert(flat.end(), mapping.begin(), mapping.end());
    // Worker-private sink: on a reallocation of an already-large log, ask
    // for hugepages; first-touch by this (pinned) worker keeps it local.
    if (flat.capacity() != cap)
      util::numa::place_local(flat.data(),
                              flat.capacity() * sizeof(csm::Assignment));
    ends.push_back(static_cast<std::uint64_t>(flat.size()));
  }

  [[nodiscard]] bool empty() const noexcept { return ends.empty(); }

  void clear() noexcept {
    flat.clear();  // keeps capacity: buffers are reused across updates
    ends.clear();
  }
};

/// Merge all worker buffers and invoke `emit` once per mapping, in
/// lexicographic (qv, dv) order. Clears the buffers afterwards.
inline void emit_merged_sorted(
    std::span<MatchBuffer> buffers,
    const std::function<void(std::span<const csm::Assignment>)>& emit) {
  std::vector<std::span<const csm::Assignment>> mappings;
  std::size_t total = 0;
  for (const MatchBuffer& b : buffers) total += b.ends.size();
  mappings.reserve(total);
  for (const MatchBuffer& b : buffers) {
    std::uint64_t begin = 0;
    for (const std::uint64_t end : b.ends) {
      mappings.emplace_back(b.flat.data() + begin, b.flat.data() + end);
      begin = end;
    }
  }
  const auto less = [](std::span<const csm::Assignment> a,
                       std::span<const csm::Assignment> b) {
    return std::lexicographical_compare(
        a.begin(), a.end(), b.begin(), b.end(),
        [](const csm::Assignment& x, const csm::Assignment& y) {
          return x.qv != y.qv ? x.qv < y.qv : x.dv < y.dv;
        });
  };
  std::sort(mappings.begin(), mappings.end(), less);
  for (const auto& m : mappings) emit(m);
  for (MatchBuffer& b : buffers) b.clear();
}

}  // namespace paracosm::engine
