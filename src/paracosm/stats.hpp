// Execution statistics for the two executors.
//
// This container is also where the single-core substitution of DESIGN.md §2
// lives: every worker accounts its CPU busy time via CLOCK_THREAD_CPUTIME_ID,
// and `simulated makespan = serial CPU + max worker CPU` projects what the
// wall clock would be on an unloaded multicore. On real multicore hardware
// the same numbers reproduce wall-clock behaviour, so nothing is lost.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace paracosm::engine {

struct WorkerStats {
  std::int64_t busy_ns = 0;     ///< CPU time spent expanding tasks
  std::uint64_t tasks = 0;      ///< tasks popped from CQ
  std::uint64_t nodes = 0;      ///< search-tree nodes expanded
  std::uint64_t matches = 0;

  // Scheduler counters (the low-contention runtime, DESIGN.md §5).
  std::uint64_t steals_attempted = 0;  ///< steal_top calls on other deques
  std::uint64_t steals_succeeded = 0;  ///< CAS-claimed tasks
  // Successful steals by victim distance (DESIGN.md §10). Always sums to
  // steals_succeeded; on a flat topology everything lands in same_node.
  std::uint64_t steals_local = 0;      ///< victim on the same core (SMT sibling)
  std::uint64_t steals_same_node = 0;  ///< victim on the same NUMA node
  std::uint64_t steals_remote = 0;     ///< victim on another node
  std::uint64_t offloads = 0;          ///< tasks re-split onto the queue
  std::uint64_t parks = 0;             ///< spin budget exhausted -> parked
  std::uint64_t shard_updates = 0;     ///< safe updates applied by this worker
                                       ///< in the sharded batch executor

  void merge(const WorkerStats& other) noexcept {
    busy_ns += other.busy_ns;
    tasks += other.tasks;
    nodes += other.nodes;
    matches += other.matches;
    steals_attempted += other.steals_attempted;
    steals_succeeded += other.steals_succeeded;
    steals_local += other.steals_local;
    steals_same_node += other.steals_same_node;
    steals_remote += other.steals_remote;
    offloads += other.offloads;
    parks += other.parks;
    shard_updates += other.shard_updates;
  }
};

struct ParallelStats {
  std::vector<WorkerStats> workers;
  std::int64_t serial_ns = 0;    ///< CPU time of sequential sections
  std::int64_t dispatch_ns = 0;  ///< pool wake + join wall time (not search);
                                 ///< kept out of busy_ns so pool overhead is
                                 ///< visible separately (latency_profile)

  void ensure_size(std::size_t n) {
    if (workers.size() < n) workers.resize(n);
  }

  void merge(const ParallelStats& other) {
    ensure_size(other.workers.size());
    for (std::size_t i = 0; i < other.workers.size(); ++i)
      workers[i].merge(other.workers[i]);
    serial_ns += other.serial_ns;
    dispatch_ns += other.dispatch_ns;
  }

  [[nodiscard]] std::uint64_t total_steals_attempted() const noexcept {
    std::uint64_t s = 0;
    for (const WorkerStats& w : workers) s += w.steals_attempted;
    return s;
  }
  [[nodiscard]] std::uint64_t total_steals_succeeded() const noexcept {
    std::uint64_t s = 0;
    for (const WorkerStats& w : workers) s += w.steals_succeeded;
    return s;
  }
  [[nodiscard]] std::uint64_t total_steals_local() const noexcept {
    std::uint64_t s = 0;
    for (const WorkerStats& w : workers) s += w.steals_local;
    return s;
  }
  [[nodiscard]] std::uint64_t total_steals_same_node() const noexcept {
    std::uint64_t s = 0;
    for (const WorkerStats& w : workers) s += w.steals_same_node;
    return s;
  }
  [[nodiscard]] std::uint64_t total_steals_remote() const noexcept {
    std::uint64_t s = 0;
    for (const WorkerStats& w : workers) s += w.steals_remote;
    return s;
  }
  /// Remote share of successful steals — the ablation's headline metric.
  [[nodiscard]] double remote_steal_share() const noexcept {
    const std::uint64_t total = total_steals_succeeded();
    return total == 0 ? 0.0
                      : static_cast<double>(total_steals_remote()) /
                            static_cast<double>(total);
  }
  [[nodiscard]] std::uint64_t total_offloads() const noexcept {
    std::uint64_t s = 0;
    for (const WorkerStats& w : workers) s += w.offloads;
    return s;
  }
  [[nodiscard]] std::uint64_t total_parks() const noexcept {
    std::uint64_t s = 0;
    for (const WorkerStats& w : workers) s += w.parks;
    return s;
  }
  [[nodiscard]] std::uint64_t total_shard_updates() const noexcept {
    std::uint64_t s = 0;
    for (const WorkerStats& w : workers) s += w.shard_updates;
    return s;
  }

  [[nodiscard]] std::int64_t max_worker_ns() const noexcept {
    std::int64_t best = 0;
    for (const WorkerStats& w : workers) best = std::max(best, w.busy_ns);
    return best;
  }
  [[nodiscard]] std::int64_t total_worker_ns() const noexcept {
    std::int64_t total = 0;
    for (const WorkerStats& w : workers) total += w.busy_ns;
    return total;
  }
  /// Projected multicore wall time (see header comment).
  [[nodiscard]] std::int64_t simulated_makespan_ns() const noexcept {
    return serial_ns + max_worker_ns();
  }
  /// Work that would run on one thread.
  [[nodiscard]] std::int64_t sequential_equivalent_ns() const noexcept {
    return serial_ns + total_worker_ns();
  }
};

/// Ingest-side accounting of the bounded ring between the stream reader and
/// the executors (src/service/ingest.hpp). Exported here — next to the
/// executor stats — so bench_baseline and paracosm_serve report one unified
/// stats vocabulary (ISSUE 4).
struct IngestStats {
  std::uint64_t enqueued = 0;        ///< updates admitted into the ring
  std::uint64_t shed = 0;            ///< overload: pushed to the defer log
  std::uint64_t degraded = 0;        ///< overload: demoted to count-only
  std::uint64_t blocked_pushes = 0;  ///< pushes that had to back off (block policy)
  std::int64_t blocked_ns = 0;       ///< wall time producers spent backing off
  std::uint64_t high_water = 0;      ///< max queue depth observed

  void merge(const IngestStats& other) noexcept {
    enqueued += other.enqueued;
    shed += other.shed;
    degraded += other.degraded;
    blocked_pushes += other.blocked_pushes;
    blocked_ns += other.blocked_ns;
    high_water = std::max(high_water, other.high_water);
  }
};

/// End-to-end service-layer counters (src/service/service.hpp): one consumer
/// run's admission, degradation, durability and recovery story in numbers.
struct ServiceStats {
  IngestStats ingest;
  std::uint64_t processed = 0;          ///< updates fully processed
  std::uint64_t degraded_searches = 0;  ///< searches cut short by the watchdog
  std::uint64_t deferred_retries = 0;   ///< shed updates replayed from the defer log
  std::uint64_t replayed_updates = 0;   ///< WAL records replayed during recovery
  std::uint64_t noop_skipped = 0;       ///< rejected mutations (skip + count)
  std::uint64_t snapshots = 0;          ///< snapshots written
  std::uint64_t wal_records = 0;        ///< WAL records appended
  std::uint64_t wal_retries = 0;        ///< transient WAL write/sync retries
  std::uint64_t watchdog_cancels = 0;   ///< deadlines enforced by the watchdog
  std::uint64_t metrics_flushes = 0;    ///< periodic metrics snapshots written

  void merge(const ServiceStats& other) noexcept {
    ingest.merge(other.ingest);
    processed += other.processed;
    degraded_searches += other.degraded_searches;
    deferred_retries += other.deferred_retries;
    replayed_updates += other.replayed_updates;
    noop_skipped += other.noop_skipped;
    snapshots += other.snapshots;
    wal_records += other.wal_records;
    wal_retries += other.wal_retries;
    watchdog_cancels += other.watchdog_cancels;
    metrics_flushes += other.metrics_flushes;
  }
};

/// Shared multi-query evaluation counters (ISSUE 6): how many per-query
/// verdicts and searches the index / grouping / sharing tiers resolved
/// without per-query dispatch. `verdicts_by_index` + `verdicts_grouped`
/// account every (query, update) pair an independent loop would have
/// classified individually.
struct MultiQueryStats {
  std::uint64_t updates_classified = 0;  ///< shared classification passes
  std::uint64_t index_probes = 0;        ///< query-index lookups
  std::uint64_t index_empty = 0;         ///< probes with no candidate class
  std::uint64_t verdicts_by_index = 0;   ///< (query, update) safe-by-construction
  std::uint64_t verdicts_grouped = 0;    ///< (query, update) settled via a class pass
  std::uint64_t group_checks = 0;        ///< shared degree-stage evaluations
  std::uint64_t group_hits = 0;          ///< degree results reused across classes
  std::uint64_t ads_checks = 0;          ///< per-class stage-3 dispatches
  std::uint64_t searches_run = 0;        ///< per-class ΔM searches executed
  std::uint64_t searches_shared = 0;     ///< member fan-outs served by those
  std::uint64_t searches_skipped = 0;    ///< searches skipped (anchor reject)
  std::uint64_t anchors_checked = 0;     ///< SWAR anchor evaluations

  void merge(const MultiQueryStats& other) noexcept {
    updates_classified += other.updates_classified;
    index_probes += other.index_probes;
    index_empty += other.index_empty;
    verdicts_by_index += other.verdicts_by_index;
    verdicts_grouped += other.verdicts_grouped;
    group_checks += other.group_checks;
    group_hits += other.group_hits;
    ads_checks += other.ads_checks;
    searches_run += other.searches_run;
    searches_shared += other.searches_shared;
    searches_skipped += other.searches_skipped;
    anchors_checked += other.anchors_checked;
  }
};

/// Per-backend counters of the pluggable safe-batch classifier backends
/// (DESIGN.md §11). Conservation contract (asserted by test_obs_integration):
/// `lanes` equals the sum of the four verdict counters, and for the wide
/// backend it also equals prepass_unsafe + label_rejects + degree_rejects +
/// swar_prerejects + scalar_fallbacks; across a stream, cpu.batches +
/// wide.batches == StreamResult::batches (inter-parallel mode).
struct BatchBackendStats {
  std::uint64_t batches = 0;  ///< batches this backend classified
  std::uint64_t lanes = 0;    ///< updates (lanes) classified

  // Verdicts produced (same taxonomy as ClassifierStats).
  std::uint64_t safe_label = 0;
  std::uint64_t safe_degree = 0;
  std::uint64_t safe_ads = 0;
  std::uint64_t unsafe_lanes = 0;

  // Wide-backend resolution breakdown (zero for the CPU backend).
  std::uint64_t prepass_unsafe = 0;    ///< rejected by the scalar prepass
  std::uint64_t label_rejects = 0;     ///< kSafeLabel proved by the mask kernels
  std::uint64_t degree_rejects = 0;    ///< kSafeDegree proved by the mask kernels
  std::uint64_t swar_prerejects = 0;   ///< kSafeAds proved by the NLF pre-reject
  std::uint64_t scalar_fallbacks = 0;  ///< lanes handed to the scalar classifier

  // Instruction-path accounting.
  std::uint64_t avx2_batches = 0;          ///< batches run on the AVX2 path
  std::uint64_t swar_batches = 0;          ///< batches run on the portable path
  std::uint64_t fallback_activations = 0;  ///< batches run SWAR under a
                                           ///< kForceAvx2 request (no AVX2)
  std::uint64_t verify_diffs = 0;          ///< PARACOSM_VERIFY oracle diffs run

  [[nodiscard]] std::uint64_t safe() const noexcept {
    return safe_label + safe_degree + safe_ads;
  }
  [[nodiscard]] std::uint64_t wide_resolved() const noexcept {
    return prepass_unsafe + label_rejects + degree_rejects + swar_prerejects;
  }

  void merge(const BatchBackendStats& other) noexcept {
    batches += other.batches;
    lanes += other.lanes;
    safe_label += other.safe_label;
    safe_degree += other.safe_degree;
    safe_ads += other.safe_ads;
    unsafe_lanes += other.unsafe_lanes;
    prepass_unsafe += other.prepass_unsafe;
    label_rejects += other.label_rejects;
    degree_rejects += other.degree_rejects;
    swar_prerejects += other.swar_prerejects;
    scalar_fallbacks += other.scalar_fallbacks;
    avx2_batches += other.avx2_batches;
    swar_batches += other.swar_batches;
    fallback_activations += other.fallback_activations;
    verify_diffs += other.verify_diffs;
  }
};

/// Per-stage tallies of the update type classifier (Figure 12 / Table 4).
struct ClassifierStats {
  std::uint64_t total = 0;
  std::uint64_t safe_label = 0;   ///< filtered by stage 1 (label)
  std::uint64_t safe_degree = 0;  ///< filtered by stage 2 (degree)
  std::uint64_t safe_ads = 0;     ///< filtered by stage 3 (candidate/ADS)
  std::uint64_t safe_invariant = 0;  ///< certified by the pre-ADS aggregate
                                     ///< invariant (invariant_stage.hpp)
  std::uint64_t unsafe_updates = 0;

  [[nodiscard]] std::uint64_t safe() const noexcept {
    return safe_label + safe_degree + safe_ads + safe_invariant;
  }
  [[nodiscard]] double unsafe_percent() const noexcept {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(unsafe_updates) /
                            static_cast<double>(total);
  }

  void merge(const ClassifierStats& other) noexcept {
    total += other.total;
    safe_label += other.safe_label;
    safe_degree += other.safe_degree;
    safe_ads += other.safe_ads;
    safe_invariant += other.safe_invariant;
    unsafe_updates += other.unsafe_updates;
  }
};

}  // namespace paracosm::engine
