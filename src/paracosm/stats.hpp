// Execution statistics for the two executors.
//
// This container is also where the single-core substitution of DESIGN.md §2
// lives: every worker accounts its CPU busy time via CLOCK_THREAD_CPUTIME_ID,
// and `simulated makespan = serial CPU + max worker CPU` projects what the
// wall clock would be on an unloaded multicore. On real multicore hardware
// the same numbers reproduce wall-clock behaviour, so nothing is lost.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace paracosm::engine {

struct WorkerStats {
  std::int64_t busy_ns = 0;     ///< CPU time spent expanding tasks
  std::uint64_t tasks = 0;      ///< tasks popped from CQ
  std::uint64_t nodes = 0;      ///< search-tree nodes expanded
  std::uint64_t matches = 0;

  void merge(const WorkerStats& other) noexcept {
    busy_ns += other.busy_ns;
    tasks += other.tasks;
    nodes += other.nodes;
    matches += other.matches;
  }
};

struct ParallelStats {
  std::vector<WorkerStats> workers;
  std::int64_t serial_ns = 0;  ///< CPU time of sequential sections

  void ensure_size(std::size_t n) {
    if (workers.size() < n) workers.resize(n);
  }

  void merge(const ParallelStats& other) {
    ensure_size(other.workers.size());
    for (std::size_t i = 0; i < other.workers.size(); ++i)
      workers[i].merge(other.workers[i]);
    serial_ns += other.serial_ns;
  }

  [[nodiscard]] std::int64_t max_worker_ns() const noexcept {
    std::int64_t best = 0;
    for (const WorkerStats& w : workers) best = std::max(best, w.busy_ns);
    return best;
  }
  [[nodiscard]] std::int64_t total_worker_ns() const noexcept {
    std::int64_t total = 0;
    for (const WorkerStats& w : workers) total += w.busy_ns;
    return total;
  }
  /// Projected multicore wall time (see header comment).
  [[nodiscard]] std::int64_t simulated_makespan_ns() const noexcept {
    return serial_ns + max_worker_ns();
  }
  /// Work that would run on one thread.
  [[nodiscard]] std::int64_t sequential_equivalent_ns() const noexcept {
    return serial_ns + total_worker_ns();
  }
};

/// Per-stage tallies of the update type classifier (Figure 12 / Table 4).
struct ClassifierStats {
  std::uint64_t total = 0;
  std::uint64_t safe_label = 0;   ///< filtered by stage 1 (label)
  std::uint64_t safe_degree = 0;  ///< filtered by stage 2 (degree)
  std::uint64_t safe_ads = 0;     ///< filtered by stage 3 (candidate/ADS)
  std::uint64_t unsafe_updates = 0;

  [[nodiscard]] std::uint64_t safe() const noexcept {
    return safe_label + safe_degree + safe_ads;
  }
  [[nodiscard]] double unsafe_percent() const noexcept {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(unsafe_updates) /
                            static_cast<double>(total);
  }

  void merge(const ClassifierStats& other) noexcept {
    total += other.total;
    safe_label += other.safe_label;
    safe_degree += other.safe_degree;
    safe_ads += other.safe_ads;
    unsafe_updates += other.unsafe_updates;
  }
};

}  // namespace paracosm::engine
