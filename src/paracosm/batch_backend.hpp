// Pluggable safe-batch execution backends (DESIGN.md §11).
//
// The inter-update batch executor (Figure 6) does two data-parallel things
// per batch: classify every update against the batch-start snapshot, and
// apply the resulting safe prefix. Both now run behind this interface:
//
//   * CpuBackend  — the PR-2 path: the worker pool strides the scalar
//                   classifier over the batch.
//   * WideBackend — gathers each update's endpoint operands into uint64 SoA
//                   columns and runs the classifier's label / degree /
//                   packed-NLF stages as wide-lane mask kernels
//                   (util/wide_ops.hpp; AVX2 with a SWAR twin, runtime
//                   cpuid-dispatched). Lanes the masks cannot settle fall
//                   back to the scalar classifier, so every backend produces
//                   byte-identical verdicts — and therefore byte-identical
//                   ΔM through the deterministic match-buffer merge. Under
//                   PARACOSM_VERIFY the wide backend additionally shadow-
//                   runs the scalar classifier on every batch and throws on
//                   the first verdict mismatch (the per-batch oracle diff).
//
// Safe-prefix application (sharded cursor + striped per-vertex locks) lives
// on the base class: it is endpoint-confined pointer chasing that no lane
// width helps, but a future device backend overrides it to keep ΔG resident.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "paracosm/classifier.hpp"
#include "paracosm/config.hpp"
#include "paracosm/stats.hpp"
#include "paracosm/worker_pool.hpp"
#include "util/sync.hpp"
#include "util/wide_ops.hpp"

namespace paracosm::engine {

/// Everything a backend borrows from the owning ParaCosm. Non-owning; the
/// facade outlives its backends. `graph`/`alg` are mutable because
/// apply_safe_prefix performs the (endpoint-confined) safe mutations.
struct BackendBind {
  const graph::QueryGraph* query = nullptr;
  graph::DataGraph* graph = nullptr;
  csm::CsmAlgorithm* alg = nullptr;
  const UpdateClassifier* classifier = nullptr;
  WorkerPool* pool = nullptr;
  util::StripedLocks<64>* locks = nullptr;
};

class BatchBackend {
 public:
  explicit BatchBackend(const BackendBind& bind) noexcept : b_(bind) {}
  virtual ~BatchBackend() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Classify `batch` against the batch-start snapshot (read-only on graph
  /// and ADS) into `verdicts` (same length). Worker/serial CPU time is
  /// accounted into `stats` exactly like the inner executors do.
  virtual void classify_batch(std::span<const graph::GraphUpdate> batch,
                              std::span<UpdateClass> verdicts,
                              ParallelStats& stats) = 0;

  /// Apply an already-classified safe prefix in parallel (phase 2b): the
  /// batch is sharded across the pool via per-worker striped cursors and
  /// the striped per-vertex locks serialize rare stripe collisions. Shared
  /// base implementation; device backends may override.
  virtual void apply_safe_prefix(std::span<const graph::GraphUpdate> prefix,
                                 ParallelStats& stats);

  [[nodiscard]] const BatchBackendStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 protected:
  /// One safe update: adjacency plus counter-cache deltas, no enumeration
  /// (safety guarantees ΔM = ∅ and no index flips).
  void apply_one(const graph::GraphUpdate& upd);
  /// Fold a finished batch's verdicts into the per-backend counters.
  void count_verdicts(std::span<const UpdateClass> verdicts) noexcept;

  BackendBind b_;
  BatchBackendStats stats_;
};

/// The default backend: scalar classification strided over the worker pool.
class CpuBackend final : public BatchBackend {
 public:
  using BatchBackend::BatchBackend;
  [[nodiscard]] std::string_view name() const noexcept override { return "cpu"; }
  void classify_batch(std::span<const graph::GraphUpdate> batch,
                      std::span<UpdateClass> verdicts,
                      ParallelStats& stats) override;
};

/// AVX2/SWAR wide-lane backend: see file comment and DESIGN.md §11.
class WideBackend final : public BatchBackend {
 public:
  WideBackend(const BackendBind& bind, util::wide::Dispatch dispatch);
  [[nodiscard]] std::string_view name() const noexcept override { return "wide"; }
  void classify_batch(std::span<const graph::GraphUpdate> batch,
                      std::span<UpdateClass> verdicts,
                      ParallelStats& stats) override;

  /// True when this instance resolved to the AVX2 instruction path.
  [[nodiscard]] bool avx2_active() const noexcept { return avx2_; }

 private:
  bool avx2_ = false;
  bool downgraded_ = false;  ///< kForceAvx2 request resolved to SWAR

  // One oriented term per (query edge, orientation), fixed at bind time —
  // the exact set matching_edges() enumerates, so the mask OR reproduces
  // the scalar stage-1/2 predicates verbatim.
  std::vector<util::wide::EdgeTerm> terms_;
  bool endpoint_local_ = false;  ///< alg->ads_safe_endpoint_nlf() && !has_ads
  bool has_ads_ = false;

  // Per-batch SoA scratch, reused across batches (capacity high-water).
  std::vector<std::uint64_t> lu_, lv_, el_, du_, dv_, sig_u_, sig_v_;
  std::vector<std::uint64_t> any_label_, any_deg_, any_alive_;
  std::vector<graph::GraphUpdate> eff_;
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint32_t> fallback_;
};

/// Registry: construct a concrete backend by kind. kAuto is a per-batch
/// routing policy, not a backend — the caller holds one backend of each kind
/// and picks per batch (Config::wide_auto_cutoff); asking for kAuto here
/// returns the wide backend.
[[nodiscard]] std::unique_ptr<BatchBackend> make_batch_backend(
    BatchBackendKind kind, const BackendBind& bind,
    util::wide::Dispatch dispatch = util::wide::Dispatch::kAuto);

}  // namespace paracosm::engine
