// Persistent worker pool with fork/join "parallel region" semantics.
//
// CSM streams contain many thousands of updates; spawning threads per update
// would dominate runtime, so workers are parked on a condition variable and
// woken per region. run() blocks until every worker finished the job.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paracosm::engine {

class WorkerPool {
 public:
  explicit WorkerPool(unsigned num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Execute job(worker_id) on every worker; blocks until all return.
  /// The job must not call run() recursively.
  void run(const std::function<void(unsigned)>& job);

 private:
  void worker_loop(unsigned id);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  unsigned remaining_ = 0;
  bool stopping_ = false;
};

}  // namespace paracosm::engine
