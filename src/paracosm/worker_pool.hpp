// Persistent worker pool with fork/join "parallel region" semantics.
//
// CSM streams contain many thousands of updates, so the pool must make a
// parallel region nearly free: the old design round-tripped every run()
// through a mutex + two condition variables (one futex syscall per worker per
// update in the common case). This version dispatches through a single epoch
// counter: run() bumps the epoch (one atomic RMW) and workers that are still
// inside their spin window pick the job up without any syscall; only workers
// whose spin budget expired are parked on the epoch futex
// (std::atomic::wait) and need a notify. Completion mirrors it: the caller
// spins briefly on the remaining-count, then parks on its futex.
//
// Per-worker state is cache-line aligned so epoch polling, job timestamps
// and park counters never false-share. Workers stamp wall-clock job
// start/end times, which lets run() separate *dispatch* overhead (wake
// latency + join latency) from the job itself — exported via
// last_dispatch_ns() and consumed by the executors' ParallelStats so pool
// overhead is visible in latency profiles instead of being silently folded
// into per-update cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "util/hw_topo.hpp"

namespace paracosm::engine {

/// Topology-aware pool construction knobs (DESIGN.md §10).
struct PoolOptions {
  /// Epoch-poll iterations before a worker parks on the futex. The default
  /// favors low wake latency without monopolizing an oversubscribed core
  /// (the spin loop yields periodically).
  std::uint32_t spin_iters = 1024;

  /// Pin each worker to its assigned CPU. Honored only when the topology's
  /// CPU ids are real (source == kSysfs); emulated and flat topologies are
  /// policy-only and never pinned.
  bool pin = false;

  /// Topology to place workers on. nullptr -> HwTopology::cached(). Tests
  /// and the ablation pass HwTopology::emulated(...) here; the pointee must
  /// outlive the pool only through the constructor (the pool copies what it
  /// needs).
  const util::HwTopology* topology = nullptr;
};

class WorkerPool {
 public:
  /// `spin_iters`: see PoolOptions::spin_iters.
  explicit WorkerPool(unsigned num_threads, std::uint32_t spin_iters = 1024)
      : WorkerPool(num_threads, PoolOptions{spin_iters}) {}
  WorkerPool(unsigned num_threads, const PoolOptions& options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Execute job(worker_id) on every worker; blocks until all return.
  /// The job must not call run() recursively.
  void run(const std::function<void(unsigned)>& job);

  /// Dispatch overhead of the most recent run(): wall time from the run()
  /// call to the first worker starting, plus from the last worker finishing
  /// to run() returning. Excludes the job itself.
  [[nodiscard]] std::int64_t last_dispatch_ns() const noexcept {
    return last_dispatch_ns_;
  }

  /// Cumulative spin->park transitions across all workers since startup.
  [[nodiscard]] std::uint64_t total_parks() const noexcept;

  // --- topology views (immutable after construction) -----------------------

  /// Topology the pool was placed on (copy of the construction-time tree).
  [[nodiscard]] const util::HwTopology& topology() const noexcept {
    return topo_;
  }
  /// Per-worker CPU assignment (assign_workers over topology()).
  [[nodiscard]] std::span<const util::TopoCpu> assignment() const noexcept {
    return assignment_;
  }
  /// Distance-sorted victim lists over assignment(); executors hand this to
  /// their TaskQueue. Lives as long as the pool.
  [[nodiscard]] const util::VictimTable& victim_table() const noexcept {
    return victims_;
  }
  /// Worker id → NUMA node of its assigned CPU (ShardedCursor's input).
  [[nodiscard]] std::span<const std::uint8_t> node_map() const noexcept {
    return node_map_;
  }
  /// Workers actually pinned (pin requested, sysfs topology, all masks
  /// accepted by the kernel).
  [[nodiscard]] bool pinned() const noexcept {
    return pinned_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> start_ns{0};  ///< job start, wall clock
    std::atomic<std::int64_t> end_ns{0};    ///< job end, wall clock
    std::atomic<std::uint64_t> parks{0};
  };

  void worker_loop(unsigned id);

  const std::uint32_t spin_iters_;
  util::HwTopology topo_;
  std::vector<util::TopoCpu> assignment_;
  util::VictimTable victims_;
  std::vector<std::uint8_t> node_map_;
  bool pin_ = false;
  std::atomic<bool> pinned_{false};
  std::unique_ptr<Slot[]> slots_;
  const std::function<void(unsigned)>* job_ = nullptr;

  alignas(64) std::atomic<std::uint64_t> epoch_{0};
  alignas(64) std::atomic<unsigned> remaining_{0};
  alignas(64) std::atomic<bool> stopping_{false};
  std::int64_t last_dispatch_ns_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace paracosm::engine
