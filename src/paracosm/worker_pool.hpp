// Persistent worker pool with fork/join "parallel region" semantics.
//
// CSM streams contain many thousands of updates, so the pool must make a
// parallel region nearly free: the old design round-tripped every run()
// through a mutex + two condition variables (one futex syscall per worker per
// update in the common case). This version dispatches through a single epoch
// counter: run() bumps the epoch (one atomic RMW) and workers that are still
// inside their spin window pick the job up without any syscall; only workers
// whose spin budget expired are parked on the epoch futex
// (std::atomic::wait) and need a notify. Completion mirrors it: the caller
// spins briefly on the remaining-count, then parks on its futex.
//
// Per-worker state is cache-line aligned so epoch polling, job timestamps
// and park counters never false-share. Workers stamp wall-clock job
// start/end times, which lets run() separate *dispatch* overhead (wake
// latency + join latency) from the job itself — exported via
// last_dispatch_ns() and consumed by the executors' ParallelStats so pool
// overhead is visible in latency profiles instead of being silently folded
// into per-update cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace paracosm::engine {

class WorkerPool {
 public:
  /// `spin_iters`: epoch-poll iterations before a worker parks on the futex.
  /// The default favors low wake latency without monopolizing an
  /// oversubscribed core (the spin loop yields periodically).
  explicit WorkerPool(unsigned num_threads, std::uint32_t spin_iters = 1024);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Execute job(worker_id) on every worker; blocks until all return.
  /// The job must not call run() recursively.
  void run(const std::function<void(unsigned)>& job);

  /// Dispatch overhead of the most recent run(): wall time from the run()
  /// call to the first worker starting, plus from the last worker finishing
  /// to run() returning. Excludes the job itself.
  [[nodiscard]] std::int64_t last_dispatch_ns() const noexcept {
    return last_dispatch_ns_;
  }

  /// Cumulative spin->park transitions across all workers since startup.
  [[nodiscard]] std::uint64_t total_parks() const noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> start_ns{0};  ///< job start, wall clock
    std::atomic<std::int64_t> end_ns{0};    ///< job end, wall clock
    std::atomic<std::uint64_t> parks{0};
  };

  void worker_loop(unsigned id);

  const std::uint32_t spin_iters_;
  std::unique_ptr<Slot[]> slots_;
  const std::function<void(unsigned)>* job_ = nullptr;

  alignas(64) std::atomic<std::uint64_t> epoch_{0};
  alignas(64) std::atomic<unsigned> remaining_{0};
  alignas(64) std::atomic<bool> stopping_{false};
  std::int64_t last_dispatch_ns_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace paracosm::engine
