// ParaCOSM facade: wraps any CsmAlgorithm (the user supplies a traversal
// routine and a filtering rule, §4) and manages both levels of parallelism:
//
//   * process()        — one update; the Find_Matches phase runs on the
//                        inner-update executor (Algorithm 2);
//   * process_stream() — a stream of updates; the inter-update batch
//                        executor (Figure 6) classifies updates in parallel,
//                        applies safe ones immediately, routes unsafe ones
//                        through the sequential-ADS + parallel-search path,
//                        and defers everything after the first unsafe update
//                        of a batch.
#pragma once

#include <memory>
#include <span>

#include "control/control_plane.hpp"
#include "control/tuning.hpp"
#include "csm/engine.hpp"
#include "obs/histogram.hpp"
#include "paracosm/batch_backend.hpp"
#include "paracosm/classifier.hpp"
#include "paracosm/config.hpp"
#include "paracosm/inner_executor.hpp"
#include "paracosm/invariant_stage.hpp"
#include "paracosm/steal_executor.hpp"
#include "paracosm/worker_pool.hpp"
#include "util/sync.hpp"

namespace paracosm::engine {

/// Aggregate result of processing an update stream.
struct StreamResult {
  std::uint64_t positive = 0;   ///< new matches
  std::uint64_t negative = 0;   ///< expired matches
  std::uint64_t nodes = 0;      ///< search-tree nodes expanded
  std::uint64_t updates_processed = 0;
  std::uint64_t noop_skipped = 0;  ///< updates that left the graph unchanged
  bool timed_out = false;
  bool cancelled = false;  ///< some search was cut short by a CancelToken

  ClassifierStats classifier;
  std::uint64_t batches = 0;
  std::uint64_t safe_applied = 0;
  std::uint64_t unsafe_sequential = 0;
  std::uint64_t deferred_after_unsafe = 0;
  std::uint64_t deferred_conflicts = 0;  ///< strict mode only

  /// Per-backend classification counters for this stream (DESIGN.md §11).
  /// In inter-parallel mode backend_cpu.batches + backend_wide.batches +
  /// invariant.batches_certified == batches — every batch is classified by
  /// exactly one backend unless the aggregate invariant certified it whole.
  BatchBackendStats backend_cpu;
  BatchBackendStats backend_wide;

  /// Aggregate-invariant certifier counters (Config::invariant_stage).
  InvariantStats invariant;

  ParallelStats stats;
  std::int64_t wall_ns = 0;

  /// Per-batch wall-time distribution (inter-parallel mode only): one sample
  /// per batch covering classify + safe-apply + the sequential unsafe update.
  /// Feeds the adaptive ablation's p99 and the control plane's epoch signals.
  obs::Histogram batch_latency;

  [[nodiscard]] std::uint64_t delta_matches() const noexcept {
    return positive + negative;
  }
};

class ParaCosm {
 public:
  /// Binds the framework to (algorithm, query, graph) and runs the offline
  /// stage. The pool is spun up once and reused across updates.
  ParaCosm(csm::CsmAlgorithm& alg, const graph::QueryGraph& q, graph::DataGraph& g,
           Config config = {});

  /// Process a single update: sequential graph/ADS maintenance plus
  /// parallel search-tree exploration. Always correct regardless of config.
  /// `cancel` (service watchdog, DESIGN.md §7) aborts only the search phase;
  /// graph and ADS maintenance always complete, so state stays consistent.
  csm::UpdateOutcome process(const graph::GraphUpdate& upd,
                             util::Clock::time_point deadline = {},
                             util::CancelView cancel = {});

  /// Process a whole stream with inter-update batching (when enabled).
  /// `deadline` bounds the entire stream (the paper's success-rate metric).
  StreamResult process_stream(std::span<const graph::GraphUpdate> stream,
                              util::Clock::time_point deadline = {},
                              util::CancelView cancel = {});

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] csm::CsmAlgorithm& algorithm() noexcept { return alg_; }
  [[nodiscard]] graph::DataGraph& graph() noexcept { return g_; }

  /// The epoch-published view of the adaptable knobs (split depth, batch
  /// cut, wide cutoff). Seeded from Config at construction; mutations take
  /// effect at the next batch boundary / parallel search — this is the only
  /// supported way to retune a live engine (DESIGN.md §13.2).
  [[nodiscard]] control::TuningView& tuning() noexcept { return tuning_; }
  [[nodiscard]] const control::TuningView& tuning() const noexcept {
    return tuning_;
  }

  /// Attach a feedback-control plane built over this engine's tuning():
  /// process_stream posts per-batch and per-search signal samples to it.
  /// The plane must outlive the attachment; pass nullptr to detach.
  void attach_control(control::ControlPlane* plane) noexcept {
    control_ = plane;
  }

  /// The aggregate-invariant certifier, nullptr unless Config::
  /// invariant_stage engaged it (index-free algorithm, strict mode).
  [[nodiscard]] const InvariantStage* invariant_stage() const noexcept {
    return invariant_.get();
  }

  /// Stats accumulated by process() calls made outside process_stream().
  [[nodiscard]] const ParallelStats& accumulated_stats() const noexcept {
    return loose_stats_;
  }
  void reset_accumulated_stats() { loose_stats_ = {}; }

  /// Observe every match found (positive and negative) as a full mapping in
  /// assignment order. Matches are buffered per worker during the parallel
  /// phase and delivered on the calling thread after quiescence, sorted
  /// lexicographically by (qv, dv) sequence — the same order regardless of
  /// executor or thread count (see csm/match.hpp, "delivery contract").
  void set_match_callback(
      std::function<void(std::span<const csm::Assignment>)> callback) {
    on_match_ = std::move(callback);
  }

 private:
  csm::UpdateOutcome process_into(const graph::GraphUpdate& upd,
                                  util::Clock::time_point deadline,
                                  util::CancelView cancel, ParallelStats& stats);
  csm::UpdateOutcome process_edge(const graph::GraphUpdate& upd,
                                  util::Clock::time_point deadline,
                                  util::CancelView cancel, ParallelStats& stats);
  /// The backend one batch routes through (Config::batch_backend; kAuto
  /// picks per batch size against Config::wide_auto_cutoff).
  [[nodiscard]] BatchBackend& backend_for(std::size_t batch_lanes) noexcept;

  csm::CsmAlgorithm& alg_;
  const graph::QueryGraph& q_;
  graph::DataGraph& g_;
  Config config_;
  control::TuningView tuning_;
  WorkerPool pool_;
  InnerExecutor inner_;
  StealingExecutor stealing_;
  UpdateClassifier classifier_;
  util::StripedLocks<64> locks_;
  std::unique_ptr<BatchBackend> backend_cpu_;
  std::unique_ptr<BatchBackend> backend_wide_;
  std::unique_ptr<InvariantStage> invariant_;
  control::ControlPlane* control_ = nullptr;
  ParallelStats loose_stats_;
  std::function<void(std::span<const csm::Assignment>)> on_match_;
};

}  // namespace paracosm::engine
