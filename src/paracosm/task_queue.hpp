// The concurrent task queue CQ of Algorithm 2.
//
// A mutex-protected deque with the two signals the paper's split predicate
// needs, exposed as lock-free reads: the current queue length and the number
// of workers blocked waiting for work ("HasIdleThreads"). `in_flight` counts
// queued plus executing tasks; the pop side uses it to detect global
// completion (a task's children are always pushed before the task itself
// retires, so in_flight only reaches zero when the whole tree is explored).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "csm/match.hpp"

namespace paracosm::engine {

class TaskQueue {
 public:
  void push(csm::SearchTask&& task) {
    // in_flight is raised BEFORE the task becomes poppable: otherwise a fast
    // consumer could pop + retire it first and drive in_flight to zero while
    // work still exists.
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard lock(mutex_);
      queue_.push_back(std::move(task));
      size_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  /// Pop the next task, blocking while the tree is still being explored.
  /// Returns nullopt once every task has retired.
  [[nodiscard]] std::optional<csm::SearchTask> pop_or_finish() {
    std::unique_lock lock(mutex_);
    while (queue_.empty()) {
      if (in_flight_.load(std::memory_order_relaxed) == 0) return std::nullopt;
      idle_.fetch_add(1, std::memory_order_relaxed);
      cv_.wait(lock, [this] {
        return !queue_.empty() || in_flight_.load(std::memory_order_relaxed) == 0;
      });
      idle_.fetch_sub(1, std::memory_order_relaxed);
    }
    csm::SearchTask task = std::move(queue_.front());
    queue_.pop_front();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }

  /// Non-blocking pop used by the initialization phase (single-threaded).
  [[nodiscard]] std::optional<csm::SearchTask> try_pop() {
    const std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    csm::SearchTask task = std::move(queue_.front());
    queue_.pop_front();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }

  /// A task has been fully expanded (its offloaded children were pushed
  /// beforehand). Wakes everyone when the tree is exhausted.
  void retire() {
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Take the mutex before notifying: a waiter that just evaluated the
      // predicate still holds it, so this cannot race into a lost wakeup.
      const std::lock_guard lock(mutex_);
      cv_.notify_all();
    }
  }

  [[nodiscard]] std::uint32_t approx_size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_idle_workers() const noexcept {
    return idle_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] std::int64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<csm::SearchTask> queue_;
  std::atomic<std::uint32_t> size_{0};
  std::atomic<std::uint32_t> idle_{0};
  std::atomic<std::int64_t> in_flight_{0};
};

}  // namespace paracosm::engine
