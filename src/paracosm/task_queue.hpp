// The concurrent task queue CQ of Algorithm 2, rebuilt as a thin façade over
// per-worker Chase–Lev deques (cl_deque.hpp).
//
// The paper's CQ is a logically-global pool of search-tree tasks with two
// split-predicate signals: the current queue length and whether any worker is
// idle ("HasIdleThreads"). Both survive the rewrite as relaxed atomics; only
// the storage changed — tasks now live in the pushing worker's own deque
// (owner push/pop on the bottom, CAS-steal on the top), so the hot path is
// lock-free and uncontended, and idle workers pull work via stealing instead
// of a global mutex.
//
// Termination: `in_flight_` counts queued plus executing tasks and is raised
// BEFORE a task becomes poppable — a task's children are always pushed before
// the task itself retires, so in_flight only reaches zero once the whole tree
// is explored. Idle protocol: a worker that finds nothing locally sweeps all
// victims, then spins with exponential backoff (so the split predicate sees
// it idle quickly), and finally parks on a condvar; pushes use a seq_cst
// Dekker handshake with the parked count so no wakeup is lost (DESIGN.md §5).
//
// Thread roles:
//   * quiescent phase (seeding / BFS initialization, single thread): `seed`
//     and `try_pop` may be called from any one thread while no worker is
//     inside `pop_or_finish` — the pool dispatch provides the ordering.
//   * parallel phase: `push(wid, ...)` is owner-only, `pop_or_finish(wid)`
//     per worker, `retire()` from the worker that finished the task.
//
// MutexTaskQueue below is the PR-1-era global mutex queue, retained verbatim
// as the comparison baseline for bench/micro_scheduler.cpp and
// bench/ablation_scheduler.cpp. Production code must not use it.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "csm/match.hpp"
#include "obs/trace_ring.hpp"
#include "paracosm/cl_deque.hpp"
#include "paracosm/stats.hpp"
#include "util/hw_topo.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace paracosm::engine {

/// Tuning knobs for the idle protocol (config.hpp wires them from Config).
struct QueueKnobs {
  /// Spin iterations (with periodic yields) in the find-work loop before a
  /// worker parks on the condvar. Small by design: parked workers are cheap
  /// and the split predicate treats spinning and parked workers alike.
  std::uint32_t spin_iters = 256;

  // --- topology-aware stealing (DESIGN.md §10) -----------------------------
  // New fields are appended so existing QueueKnobs{spin} initializers keep
  // their meaning.

  /// Remote probing is a *cadence*, not a default: an idle worker includes
  /// the remote tier only every `remote_probe_period`-th sweep, probing its
  /// own node's victims on every other one. This is what biases the race
  /// for a freshly split task toward same-node thieves — sweep order alone
  /// cannot, because the inter-sweep spin dominates the sweep itself, so
  /// whichever idler's sweep fires first wins regardless of tier order.
  /// Fruitless remote passes stretch the cadence exponentially up to
  /// `remote_backoff_max` sweeps; a successful remote steal snaps it back
  /// to the base period. 0/1 = probe remote every sweep.
  std::uint32_t remote_probe_period = 64;
  std::uint32_t remote_backoff_max = 512;

  /// Distance-sorted victim lists (usually WorkerPool::victim_table()).
  /// Must outlive the queue and cover >= `workers` entries. nullptr -> the
  /// flat randomized sweep of PR 2 (per-distance counters then rely on the
  /// table and stay zero/same-node-only accordingly).
  const util::VictimTable* victims = nullptr;

  /// false -> keep the flat randomized sweep even when `victims` is set
  /// (counters still tally per-distance via its matrix) — the ablation's
  /// baseline arm.
  bool topo_order = true;

  /// A remote steal migrates up to this many tasks: one to run immediately,
  /// the rest into the thief's own deque. Near-first sweeping alone starves
  /// the far node — its workers find nothing same-node, pay a cross-node
  /// steal for a *single* task, consume it, and are starved again, so every
  /// steal they make is remote. Migrating a small batch seeds same-node
  /// stealing on the thief's side of the interconnect, which is what
  /// actually cuts the remote-steal share (the ablation measures this).
  /// 1 = single-task remote steals; only applies to the topo-ordered sweep.
  std::uint32_t remote_batch = 4;
};

class TaskQueue {
 public:
  explicit TaskQueue(unsigned workers, QueueKnobs knobs = {})
      : knobs_(knobs), n_(workers == 0 ? 1u : workers), w_(new PerWorker[n_]) {
    for (unsigned i = 0; i < n_; ++i) {
      w_[i].rng.reseed(0xc1de9e5ULL * (i + 1));
      // Queues are short-lived (one per update burst); most steals are the
      // initial fan-out races. Arm the remote cadence from sweep zero or
      // those races run tier-blind and the bias never materializes.
      w_[i].remote_skip = base_period();
    }
  }

  ~TaskQueue() { drain_and_free(); }

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  [[nodiscard]] unsigned workers() const noexcept { return n_; }

  // --- quiescent-phase API (one thread, no worker inside pop_or_finish) ----

  /// Push a root task, round-robin across worker deques so every worker
  /// starts with local work.
  void seed(csm::SearchTask&& task) {
    const unsigned wid = seed_rr_++ % n_;
    push(wid, std::move(task));
  }

  /// Non-blocking pop used by the single-threaded initialization phase.
  /// Takes from the top (FIFO), preserving the BFS order Traverse_Next_Layer
  /// relies on. Does NOT decrement in_flight (pair with retire()).
  [[nodiscard]] std::optional<csm::SearchTask> try_pop() {
    for (unsigned k = 0; k < n_; ++k) {
      const unsigned v = (seed_rr_ + k) % n_;
      if (csm::SearchTask* node = w_[v].deque.steal_top()) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
        return take(v, node);
      }
    }
    return std::nullopt;
  }

  // --- parallel-phase API --------------------------------------------------

  /// Owner push: raises in_flight before the task becomes stealable.
  void push(unsigned wid, csm::SearchTask&& task) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    PerWorker& me = w_[wid];
    csm::SearchTask* node = me.acquire();
    *node = std::move(task);
    me.deque.push_bottom(node);
    // Dekker handshake with parking workers: the seq_cst publish of pending_
    // and the seq_cst read of parked_ pair with the reverse order in park()
    // — at least one side always observes the other, so a worker cannot park
    // forever while this task sits unclaimed.
    pending_.fetch_add(1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst) != 0) wake_one(wid);
  }

  /// Pop the next task: own deque first (LIFO), then steal sweeps, then
  /// spin-then-park. Returns nullopt once every task has retired.
  [[nodiscard]] std::optional<csm::SearchTask> pop_or_finish(unsigned wid) {
    PerWorker& me = w_[wid];
    if (csm::SearchTask* node = me.deque.pop_bottom()) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return take(wid, node);
    }
    // Local deque dry: this worker now counts as idle for the paper's
    // HasIdleThreads() signal until it finds work or the tree is exhausted.
    idle_.fetch_add(1, std::memory_order_relaxed);
    util::SpinBackoff backoff;
    for (;;) {
      // One full victim sweep per attempt (topology-ordered when a victim
      // table is wired in, the PR-2 randomized ring otherwise).
      if (csm::SearchTask* node = sweep_victims(wid, me)) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
        idle_.fetch_sub(1, std::memory_order_relaxed);
        return take(wid, node);
      }
      // A split may have landed in our own deque while we were sweeping.
      if (csm::SearchTask* node = me.deque.pop_bottom()) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
        idle_.fetch_sub(1, std::memory_order_relaxed);
        return take(wid, node);
      }
      if (in_flight_.load(std::memory_order_acquire) == 0) {
        idle_.fetch_sub(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      if (backoff.spins() < knobs_.spin_iters) {
        backoff.pause();
      } else {
        park(me);
        backoff.reset();
      }
    }
  }

  /// A task has been fully expanded (its offloaded children were pushed
  /// beforehand). Wakes everyone when the tree is exhausted.
  void retire() {
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) wake_all();
  }

  // --- split-predicate signals (all relaxed reads) -------------------------

  [[nodiscard]] std::uint32_t approx_size() const noexcept {
    const std::int64_t p = pending_.load(std::memory_order_relaxed);
    return p > 0 ? static_cast<std::uint32_t>(p) : 0;
  }
  [[nodiscard]] bool has_idle_workers() const noexcept {
    return idle_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] std::int64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Depth of one worker's own deque (the stealing split policy's signal).
  [[nodiscard]] std::size_t local_size(unsigned wid) const noexcept {
    return w_[wid].deque.size_approx();
  }

  /// Fold this run's per-worker scheduler counters into `ws` and clear them.
  void export_counters(unsigned wid, WorkerStats& ws) noexcept {
    PerWorker& me = w_[wid];
    ws.steals_attempted += me.steals_attempted;
    ws.steals_succeeded += me.steals_succeeded;
    ws.steals_local += me.steals_local;
    ws.steals_same_node += me.steals_same_node;
    ws.steals_remote += me.steals_remote;
    ws.parks += me.parks;
    me.steals_attempted = me.steals_succeeded = me.parks = 0;
    me.steals_local = me.steals_same_node = me.steals_remote = 0;
  }

 private:
  struct alignas(64) PerWorker {
    ChaseLevDeque<csm::SearchTask*> deque;
    std::vector<csm::SearchTask*> free_nodes;  ///< recycled task nodes
    util::Rng rng{0};
    std::uint64_t steals_attempted = 0;
    std::uint64_t steals_succeeded = 0;
    std::uint64_t steals_local = 0;      ///< by victim distance; sums to
    std::uint64_t steals_same_node = 0;  ///< steals_succeeded (same-node on a
    std::uint64_t steals_remote = 0;     ///< flat machine)
    std::uint32_t remote_backoff = 0;  ///< current back-off length (sweeps)
    std::uint32_t remote_skip = 0;     ///< sweeps left skipping remote tier
    std::uint64_t parks = 0;
    std::atomic<bool> parked{false};  ///< blocked on park_cv (or about to)
    std::mutex park_mutex;
    std::condition_variable park_cv;

    ~PerWorker() {
      for (csm::SearchTask* node : free_nodes) delete node;
    }

    [[nodiscard]] csm::SearchTask* acquire() {
      if (free_nodes.empty()) return new csm::SearchTask;
      csm::SearchTask* node = free_nodes.back();
      free_nodes.pop_back();
      return node;
    }
  };

  /// One full victim sweep for `wid`. With a victim table and topo_order,
  /// probe near victims (SMT sibling, then same node — the table is
  /// distance-sorted) before remote ones, rotating randomly *within* each
  /// tier so concurrent thieves spread over victims; the remote tier is
  /// skipped for an exponentially growing number of sweeps after fruitless
  /// remote probes (reset by any success). Without a table (or with
  /// topo_order off — the ablation baseline) this is the PR-2 randomized
  /// ring; the table, when present, still prices each steal's distance.
  [[nodiscard]] csm::SearchTask* sweep_victims(unsigned wid, PerWorker& me) {
    const util::VictimTable* vt =
        (knobs_.victims != nullptr && knobs_.victims->n == n_) ? knobs_.victims
                                                               : nullptr;
    if (vt == nullptr || !knobs_.topo_order || n_ < 2) {
      const unsigned start = static_cast<unsigned>(me.rng.bounded(n_));
      for (unsigned k = 0; k < n_; ++k) {
        const unsigned v = (start + k) % n_;
        if (v == wid) continue;
        ++me.steals_attempted;
        if (csm::SearchTask* node = w_[v].deque.steal_top())
          return record_steal(me, vt, wid, v, node);
      }
      return nullptr;
    }
    const std::span<const util::Victim> row = vt->of(wid);
    const unsigned near_len = vt->remote_begin[wid];
    const unsigned remote_len = static_cast<unsigned>(row.size()) - near_len;
    if (near_len > 0) {
      const unsigned start = static_cast<unsigned>(me.rng.bounded(near_len));
      for (unsigned k = 0; k < near_len; ++k) {
        const util::Victim& vic = row[(start + k) % near_len];
        ++me.steals_attempted;
        if (csm::SearchTask* node = w_[vic.wid].deque.steal_top())
          return record_steal(me, vt, wid, vic.wid, node);
      }
    }
    if (remote_len > 0) {
      // Starvation valve: a queued backlog our near tier evidently isn't
      // draining means the work is genuinely elsewhere — migrate now, skip
      // or no skip. Only the scarce-work tails (a pending task or two that
      // near idlers are racing for) stay cadenced; that is where cadence
      // converts cross-node steals into same-node ones instead of delaying
      // anybody.
      const bool surplus =
          pending_.load(std::memory_order_relaxed) > std::int64_t{2};
      if (me.remote_skip > 0 && !surplus) {
        --me.remote_skip;
      } else {
        const unsigned start = static_cast<unsigned>(me.rng.bounded(remote_len));
        for (unsigned k = 0; k < remote_len; ++k) {
          const util::Victim& vic = row[near_len + (start + k) % remote_len];
          ++me.steals_attempted;
          if (csm::SearchTask* node = w_[vic.wid].deque.steal_top()) {
            // Batch the migration (see QueueKnobs::remote_batch): extras go
            // to our own deque — they stay pending and in flight, only their
            // home changes, so no counter or wakeup bookkeeping moves.
            for (std::uint32_t extra = 1; extra < knobs_.remote_batch; ++extra) {
              csm::SearchTask* more = w_[vic.wid].deque.steal_top();
              if (more == nullptr) break;
              me.deque.push_bottom(more);
            }
            me.remote_backoff = 0;
            me.remote_skip = base_period();
            return record_steal(me, vt, wid, vic.wid, node);
          }
        }
        me.remote_backoff =
            std::min(me.remote_backoff == 0 ? base_period() : me.remote_backoff * 2u,
                     knobs_.remote_backoff_max);
        me.remote_skip = me.remote_backoff;
      }
    }
    return nullptr;
  }

  /// Base remote cadence: sweeps between remote-tier passes (>= 0).
  [[nodiscard]] std::uint32_t base_period() const noexcept {
    return knobs_.remote_probe_period > 0 ? knobs_.remote_probe_period - 1 : 0;
  }

  /// Successful steal: count it and price its distance. Remote cadence
  /// state is managed by the sweep itself (a near success deliberately does
  /// NOT re-enable eager remote probing — a worker that can feed itself
  /// same-node has no reason to hammer the interconnect).
  csm::SearchTask* record_steal(PerWorker& me, const util::VictimTable* vt,
                                unsigned wid, unsigned victim,
                                csm::SearchTask* node) {
    ++me.steals_succeeded;
    // No topology info -> same-node by definition (a flat machine).
    const auto d = vt != nullptr ? vt->distance(wid, victim)
                                 : util::StealDistance::kSameNode;
    switch (d) {
      case util::StealDistance::kLocal: ++me.steals_local; break;
      case util::StealDistance::kSameNode: ++me.steals_same_node; break;
      case util::StealDistance::kRemote: ++me.steals_remote; break;
    }
    PARACOSM_TRACE_INSTANT(obs::EventKind::kSteal, victim, wid,
                           static_cast<std::uint64_t>(d));
    return node;
  }

  /// Move the task out of the node and recycle the node on the taker's own
  /// free list (nodes migrate with steals; lists stay single-owner).
  [[nodiscard]] csm::SearchTask take(unsigned wid, csm::SearchTask* node) {
    csm::SearchTask task = std::move(*node);
    node->assigned.clear();  // keep capacity, drop stale assignments
    w_[wid].free_nodes.push_back(node);
    return task;
  }

  void park(PerWorker& me) {
    ++me.parks;
    std::unique_lock lock(me.park_mutex);
    parked_.fetch_add(1, std::memory_order_seq_cst);
    me.parked.store(true, std::memory_order_seq_cst);
    me.park_cv.wait(lock, [this, &me] {
      return pending_.load(std::memory_order_seq_cst) > 0 ||
             in_flight_.load(std::memory_order_acquire) == 0;
    });
    me.parked.store(false, std::memory_order_relaxed);
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Wake one parked worker, nearest the pusher first. The shared condvar
  /// this replaces woke an *arbitrary* parked worker — and at burst tails,
  /// when the woken thief is the only one hunting, the steal-distance mix
  /// degenerated to the worker-population mix no matter how the sweep was
  /// tiered. Scanning the pusher's distance-sorted victim row hands the
  /// fresh split to an SMT sibling or same-node worker whenever one is
  /// parked; without a table the randomized ring keeps the flat behavior.
  /// Dekker handshake: push publishes pending_ (seq_cst) then reads the
  /// parked flags here; park() sets its flag then reads pending_ in the
  /// wait predicate — one side always observes the other, and the scan
  /// covers every other worker, so a needed wake is never skipped.
  void wake_one(unsigned wid) {
    const util::VictimTable* vt =
        (knobs_.victims != nullptr && knobs_.victims->n == n_ &&
         knobs_.topo_order && n_ > 1)
            ? knobs_.victims
            : nullptr;
    if (vt != nullptr) {
      for (const util::Victim& vic : vt->of(wid))
        if (try_wake(w_[vic.wid])) return;
      return;
    }
    const unsigned start = static_cast<unsigned>(w_[wid].rng.bounded(n_));
    for (unsigned k = 0; k < n_; ++k) {
      const unsigned v = (start + k) % n_;
      if (v == wid) continue;
      if (try_wake(w_[v])) return;
    }
  }

  bool try_wake(PerWorker& cand) {
    if (!cand.parked.load(std::memory_order_seq_cst)) return false;
    const std::lock_guard lock(cand.park_mutex);
    cand.park_cv.notify_one();
    return true;
  }

  void wake_all() {
    for (unsigned i = 0; i < n_; ++i) {
      const std::lock_guard lock(w_[i].park_mutex);
      w_[i].park_cv.notify_all();
    }
  }

  /// Destructor-time cleanup: a deadline abort can in principle leave nodes
  /// queued; free whatever the deques still hold.
  void drain_and_free() {
    for (unsigned i = 0; i < n_; ++i)
      while (csm::SearchTask* node = w_[i].deque.steal_top()) delete node;
  }

  QueueKnobs knobs_;
  unsigned n_;
  std::unique_ptr<PerWorker[]> w_;
  unsigned seed_rr_ = 0;

  alignas(64) std::atomic<std::int64_t> pending_{0};   ///< queued tasks
  alignas(64) std::atomic<std::int64_t> in_flight_{0};  ///< queued + executing
  alignas(64) std::atomic<std::uint32_t> idle_{0};      ///< hunting or parked
  alignas(64) std::atomic<std::uint32_t> parked_{0};    ///< parked subset
};

/// The pre-rewrite global mutex queue, kept ONLY as the before/after baseline
/// for the scheduler benches. Same contract as TaskQueue's blocking API.
class MutexTaskQueue {
 public:
  void push(csm::SearchTask&& task) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard lock(mutex_);
      queue_.push_back(std::move(task));
      size_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  [[nodiscard]] std::optional<csm::SearchTask> pop_or_finish() {
    std::unique_lock lock(mutex_);
    while (queue_.empty()) {
      if (in_flight_.load(std::memory_order_relaxed) == 0) return std::nullopt;
      idle_.fetch_add(1, std::memory_order_relaxed);
      cv_.wait(lock, [this] {
        return !queue_.empty() || in_flight_.load(std::memory_order_relaxed) == 0;
      });
      idle_.fetch_sub(1, std::memory_order_relaxed);
    }
    csm::SearchTask task = std::move(queue_.front());
    queue_.pop_front();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }

  [[nodiscard]] std::optional<csm::SearchTask> try_pop() {
    const std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    csm::SearchTask task = std::move(queue_.front());
    queue_.pop_front();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }

  void retire() {
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard lock(mutex_);
      cv_.notify_all();
    }
  }

  [[nodiscard]] std::uint32_t approx_size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_idle_workers() const noexcept {
    return idle_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] std::int64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<csm::SearchTask> queue_;
  std::atomic<std::uint32_t> size_{0};
  std::atomic<std::uint32_t> idle_{0};
  std::atomic<std::int64_t> in_flight_{0};
};

}  // namespace paracosm::engine
