// The concurrent task queue CQ of Algorithm 2, rebuilt as a thin façade over
// per-worker Chase–Lev deques (cl_deque.hpp).
//
// The paper's CQ is a logically-global pool of search-tree tasks with two
// split-predicate signals: the current queue length and whether any worker is
// idle ("HasIdleThreads"). Both survive the rewrite as relaxed atomics; only
// the storage changed — tasks now live in the pushing worker's own deque
// (owner push/pop on the bottom, CAS-steal on the top), so the hot path is
// lock-free and uncontended, and idle workers pull work via stealing instead
// of a global mutex.
//
// Termination: `in_flight_` counts queued plus executing tasks and is raised
// BEFORE a task becomes poppable — a task's children are always pushed before
// the task itself retires, so in_flight only reaches zero once the whole tree
// is explored. Idle protocol: a worker that finds nothing locally sweeps all
// victims, then spins with exponential backoff (so the split predicate sees
// it idle quickly), and finally parks on a condvar; pushes use a seq_cst
// Dekker handshake with the parked count so no wakeup is lost (DESIGN.md §5).
//
// Thread roles:
//   * quiescent phase (seeding / BFS initialization, single thread): `seed`
//     and `try_pop` may be called from any one thread while no worker is
//     inside `pop_or_finish` — the pool dispatch provides the ordering.
//   * parallel phase: `push(wid, ...)` is owner-only, `pop_or_finish(wid)`
//     per worker, `retire()` from the worker that finished the task.
//
// MutexTaskQueue below is the PR-1-era global mutex queue, retained verbatim
// as the comparison baseline for bench/micro_scheduler.cpp and
// bench/ablation_scheduler.cpp. Production code must not use it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "csm/match.hpp"
#include "obs/trace_ring.hpp"
#include "paracosm/cl_deque.hpp"
#include "paracosm/stats.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace paracosm::engine {

/// Tuning knobs for the idle protocol (config.hpp wires them from Config).
struct QueueKnobs {
  /// Spin iterations (with periodic yields) in the find-work loop before a
  /// worker parks on the condvar. Small by design: parked workers are cheap
  /// and the split predicate treats spinning and parked workers alike.
  std::uint32_t spin_iters = 256;
};

class TaskQueue {
 public:
  explicit TaskQueue(unsigned workers, QueueKnobs knobs = {})
      : knobs_(knobs), n_(workers == 0 ? 1u : workers), w_(new PerWorker[n_]) {
    for (unsigned i = 0; i < n_; ++i) w_[i].rng.reseed(0xc1de9e5ULL * (i + 1));
  }

  ~TaskQueue() { drain_and_free(); }

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  [[nodiscard]] unsigned workers() const noexcept { return n_; }

  // --- quiescent-phase API (one thread, no worker inside pop_or_finish) ----

  /// Push a root task, round-robin across worker deques so every worker
  /// starts with local work.
  void seed(csm::SearchTask&& task) {
    const unsigned wid = seed_rr_++ % n_;
    push(wid, std::move(task));
  }

  /// Non-blocking pop used by the single-threaded initialization phase.
  /// Takes from the top (FIFO), preserving the BFS order Traverse_Next_Layer
  /// relies on. Does NOT decrement in_flight (pair with retire()).
  [[nodiscard]] std::optional<csm::SearchTask> try_pop() {
    for (unsigned k = 0; k < n_; ++k) {
      const unsigned v = (seed_rr_ + k) % n_;
      if (csm::SearchTask* node = w_[v].deque.steal_top()) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
        return take(v, node);
      }
    }
    return std::nullopt;
  }

  // --- parallel-phase API --------------------------------------------------

  /// Owner push: raises in_flight before the task becomes stealable.
  void push(unsigned wid, csm::SearchTask&& task) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    PerWorker& me = w_[wid];
    csm::SearchTask* node = me.acquire();
    *node = std::move(task);
    me.deque.push_bottom(node);
    // Dekker handshake with parking workers: the seq_cst publish of pending_
    // and the seq_cst read of parked_ pair with the reverse order in park()
    // — at least one side always observes the other, so a worker cannot park
    // forever while this task sits unclaimed.
    pending_.fetch_add(1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst) != 0) {
      const std::lock_guard lock(park_mutex_);
      park_cv_.notify_one();
    }
  }

  /// Pop the next task: own deque first (LIFO), then steal sweeps, then
  /// spin-then-park. Returns nullopt once every task has retired.
  [[nodiscard]] std::optional<csm::SearchTask> pop_or_finish(unsigned wid) {
    PerWorker& me = w_[wid];
    if (csm::SearchTask* node = me.deque.pop_bottom()) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return take(wid, node);
    }
    // Local deque dry: this worker now counts as idle for the paper's
    // HasIdleThreads() signal until it finds work or the tree is exhausted.
    idle_.fetch_add(1, std::memory_order_relaxed);
    util::SpinBackoff backoff;
    for (;;) {
      // One full randomized victim sweep per attempt.
      const unsigned start = static_cast<unsigned>(me.rng.bounded(n_));
      for (unsigned k = 0; k < n_; ++k) {
        const unsigned v = (start + k) % n_;
        if (v == wid) continue;
        ++me.steals_attempted;
        if (csm::SearchTask* node = w_[v].deque.steal_top()) {
          ++me.steals_succeeded;
          PARACOSM_TRACE_INSTANT(obs::EventKind::kSteal, v, wid);
          pending_.fetch_sub(1, std::memory_order_relaxed);
          idle_.fetch_sub(1, std::memory_order_relaxed);
          return take(wid, node);
        }
      }
      // A split may have landed in our own deque while we were sweeping.
      if (csm::SearchTask* node = me.deque.pop_bottom()) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
        idle_.fetch_sub(1, std::memory_order_relaxed);
        return take(wid, node);
      }
      if (in_flight_.load(std::memory_order_acquire) == 0) {
        idle_.fetch_sub(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      if (backoff.spins() < knobs_.spin_iters) {
        backoff.pause();
      } else {
        park(me);
        backoff.reset();
      }
    }
  }

  /// A task has been fully expanded (its offloaded children were pushed
  /// beforehand). Wakes everyone when the tree is exhausted.
  void retire() {
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard lock(park_mutex_);
      park_cv_.notify_all();
    }
  }

  // --- split-predicate signals (all relaxed reads) -------------------------

  [[nodiscard]] std::uint32_t approx_size() const noexcept {
    const std::int64_t p = pending_.load(std::memory_order_relaxed);
    return p > 0 ? static_cast<std::uint32_t>(p) : 0;
  }
  [[nodiscard]] bool has_idle_workers() const noexcept {
    return idle_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] std::int64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Depth of one worker's own deque (the stealing split policy's signal).
  [[nodiscard]] std::size_t local_size(unsigned wid) const noexcept {
    return w_[wid].deque.size_approx();
  }

  /// Fold this run's per-worker scheduler counters into `ws` and clear them.
  void export_counters(unsigned wid, WorkerStats& ws) noexcept {
    PerWorker& me = w_[wid];
    ws.steals_attempted += me.steals_attempted;
    ws.steals_succeeded += me.steals_succeeded;
    ws.parks += me.parks;
    me.steals_attempted = me.steals_succeeded = me.parks = 0;
  }

 private:
  struct alignas(64) PerWorker {
    ChaseLevDeque<csm::SearchTask*> deque;
    std::vector<csm::SearchTask*> free_nodes;  ///< recycled task nodes
    util::Rng rng{0};
    std::uint64_t steals_attempted = 0;
    std::uint64_t steals_succeeded = 0;
    std::uint64_t parks = 0;

    ~PerWorker() {
      for (csm::SearchTask* node : free_nodes) delete node;
    }

    [[nodiscard]] csm::SearchTask* acquire() {
      if (free_nodes.empty()) return new csm::SearchTask;
      csm::SearchTask* node = free_nodes.back();
      free_nodes.pop_back();
      return node;
    }
  };

  /// Move the task out of the node and recycle the node on the taker's own
  /// free list (nodes migrate with steals; lists stay single-owner).
  [[nodiscard]] csm::SearchTask take(unsigned wid, csm::SearchTask* node) {
    csm::SearchTask task = std::move(*node);
    node->assigned.clear();  // keep capacity, drop stale assignments
    w_[wid].free_nodes.push_back(node);
    return task;
  }

  void park(PerWorker& me) {
    ++me.parks;
    std::unique_lock lock(park_mutex_);
    parked_.fetch_add(1, std::memory_order_seq_cst);
    park_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_seq_cst) > 0 ||
             in_flight_.load(std::memory_order_acquire) == 0;
    });
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Destructor-time cleanup: a deadline abort can in principle leave nodes
  /// queued; free whatever the deques still hold.
  void drain_and_free() {
    for (unsigned i = 0; i < n_; ++i)
      while (csm::SearchTask* node = w_[i].deque.steal_top()) delete node;
  }

  QueueKnobs knobs_;
  unsigned n_;
  std::unique_ptr<PerWorker[]> w_;
  unsigned seed_rr_ = 0;

  alignas(64) std::atomic<std::int64_t> pending_{0};   ///< queued tasks
  alignas(64) std::atomic<std::int64_t> in_flight_{0};  ///< queued + executing
  alignas(64) std::atomic<std::uint32_t> idle_{0};      ///< hunting or parked
  alignas(64) std::atomic<std::uint32_t> parked_{0};    ///< parked subset
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
};

/// The pre-rewrite global mutex queue, kept ONLY as the before/after baseline
/// for the scheduler benches. Same contract as TaskQueue's blocking API.
class MutexTaskQueue {
 public:
  void push(csm::SearchTask&& task) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard lock(mutex_);
      queue_.push_back(std::move(task));
      size_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  [[nodiscard]] std::optional<csm::SearchTask> pop_or_finish() {
    std::unique_lock lock(mutex_);
    while (queue_.empty()) {
      if (in_flight_.load(std::memory_order_relaxed) == 0) return std::nullopt;
      idle_.fetch_add(1, std::memory_order_relaxed);
      cv_.wait(lock, [this] {
        return !queue_.empty() || in_flight_.load(std::memory_order_relaxed) == 0;
      });
      idle_.fetch_sub(1, std::memory_order_relaxed);
    }
    csm::SearchTask task = std::move(queue_.front());
    queue_.pop_front();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }

  [[nodiscard]] std::optional<csm::SearchTask> try_pop() {
    const std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    csm::SearchTask task = std::move(queue_.front());
    queue_.pop_front();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }

  void retire() {
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard lock(mutex_);
      cv_.notify_all();
    }
  }

  [[nodiscard]] std::uint32_t approx_size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_idle_workers() const noexcept {
    return idle_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] std::int64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<csm::SearchTask> queue_;
  std::atomic<std::uint32_t> size_{0};
  std::atomic<std::uint32_t> idle_{0};
  std::atomic<std::int64_t> in_flight_{0};
};

}  // namespace paracosm::engine
