#include "paracosm/worker_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/trace_ring.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace paracosm::engine {

namespace {

[[nodiscard]] std::int64_t wall_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             util::Clock::now().time_since_epoch())
      .count();
}

}  // namespace

WorkerPool::WorkerPool(unsigned num_threads, const PoolOptions& options)
    : spin_iters_(options.spin_iters),
      topo_(options.topology != nullptr ? *options.topology
                                        : util::HwTopology::cached()),
      pin_(options.pin) {
  const unsigned n = std::max(1u, num_threads);
  assignment_ = util::assign_workers(topo_, n);
  victims_ = util::make_victim_table(assignment_);
  node_map_.resize(n);
  for (unsigned i = 0; i < n; ++i)
    node_map_[i] = static_cast<std::uint8_t>(assignment_[i].node);
  // Pin only when the CPU ids are real; emulated/flat trees are policy-only.
  pinned_.store(pin_ && topo_.source == util::TopoSource::kSysfs,
                std::memory_order_relaxed);
  slots_.reset(new Slot[n]);
  threads_.reserve(n);
  for (unsigned id = 0; id < n; ++id)
    threads_.emplace_back([this, id] { worker_loop(id); });
}

WorkerPool::~WorkerPool() {
  stopping_.store(true, std::memory_order_release);
  // atomic::wait only unblocks on a VALUE change, so bump the epoch too —
  // notify alone would let a parked worker re-block without seeing stopping_.
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(unsigned)>& job) {
  const unsigned n = size();
  const std::int64_t call_ns = wall_ns();
  job_ = &job;
  remaining_.store(n, std::memory_order_relaxed);
  // The release RMW publishes job_ and remaining_ to workers whose acquire
  // epoch load observes the new value.
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();

  // Join: spin briefly (a worker on another core finishes fast), then park
  // on the remaining-count futex. Workers only notify on the 0 transition.
  util::SpinBackoff backoff;
  for (;;) {
    const unsigned left = remaining_.load(std::memory_order_acquire);
    if (left == 0) break;
    if (backoff.spins() < spin_iters_) {
      backoff.pause();
    } else {
      remaining_.wait(left, std::memory_order_acquire);
    }
  }
  job_ = nullptr;
  const std::int64_t ret_ns = wall_ns();

  std::int64_t first_start = ret_ns, last_end = call_ns;
  for (unsigned i = 0; i < n; ++i) {
    first_start =
        std::min(first_start, slots_[i].start_ns.load(std::memory_order_relaxed));
    last_end = std::max(last_end, slots_[i].end_ns.load(std::memory_order_relaxed));
  }
  last_dispatch_ns_ =
      std::max<std::int64_t>(0, first_start - call_ns) +
      std::max<std::int64_t>(0, ret_ns - last_end);
}

std::uint64_t WorkerPool::total_parks() const noexcept {
  std::uint64_t total = 0;
  for (unsigned i = 0; i < size(); ++i)
    total += slots_[i].parks.load(std::memory_order_relaxed);
  return total;
}

void WorkerPool::worker_loop(unsigned id) {
  PARACOSM_TRACE_THREAD_NAME("worker " + std::to_string(id));
  if (pin_ && topo_.source == util::TopoSource::kSysfs) {
    if (!util::pin_current_thread(assignment_[id].cpu))
      pinned_.store(false, std::memory_order_relaxed);
  }
  Slot& slot = slots_[id];
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for the next epoch: spin (cheap wakeup) then park (cheap idle).
    util::SpinBackoff backoff;
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    while (e == seen) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (backoff.spins() < spin_iters_) {
        backoff.pause();
      } else {
        slot.parks.fetch_add(1, std::memory_order_relaxed);
        epoch_.wait(e, std::memory_order_acquire);
        backoff.reset();
      }
      e = epoch_.load(std::memory_order_acquire);
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    seen = e;

    slot.start_ns.store(wall_ns(), std::memory_order_relaxed);
    (*job_)(id);
    slot.end_ns.store(wall_ns(), std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      remaining_.notify_all();
  }
}

}  // namespace paracosm::engine
