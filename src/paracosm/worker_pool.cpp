#include "paracosm/worker_pool.hpp"

#include <algorithm>

namespace paracosm::engine {

WorkerPool::WorkerPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  threads_.reserve(n);
  for (unsigned id = 0; id < n; ++id)
    threads_.emplace_back([this, id] { worker_loop(id); });
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(unsigned)>& job) {
  std::unique_lock lock(mutex_);
  job_ = &job;
  remaining_ = size();
  ++epoch_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void WorkerPool::worker_loop(unsigned id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || (job_ != nullptr && epoch_ != seen_epoch); });
      if (stopping_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(id);
    {
      const std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace paracosm::engine
