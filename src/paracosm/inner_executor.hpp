// Inner-update executor (paper §4.1, Algorithm 2).
//
// Initialization phase: root-level tasks (the update's seeds) are expanded
// breadth-first on the main thread until the concurrent queue holds at least
// one task per worker, decomposing the search tree into independent
// subtrees. Parallel phase: workers pop tasks and run the algorithm's own
// traversal routine; the injected split hook re-offloads direct subtasks
// whenever idle workers are observed, the queue is empty, and the depth is
// below SPLIT_DEPTH — the paper's adaptive task-sharing rule.
#pragma once

#include <functional>
#include <span>

#include "csm/algorithm.hpp"
#include "paracosm/config.hpp"
#include "paracosm/stats.hpp"
#include "paracosm/worker_pool.hpp"

namespace paracosm::engine {

struct InnerRunResult {
  std::uint64_t matches = 0;
  std::uint64_t nodes = 0;
  bool timed_out = false;
  ParallelStats stats;
};

class InnerExecutor {
 public:
  InnerExecutor(WorkerPool& pool, std::uint32_t split_depth, bool dynamic_balance)
      : pool_(pool), split_depth_(split_depth), dynamic_balance_(dynamic_balance) {}

  /// Explore all seeds' subtrees in parallel. `on_match` (optional) may be
  /// invoked from any worker; it is serialized internally.
  [[nodiscard]] InnerRunResult run(
      const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
      util::Clock::time_point deadline = {},
      const std::function<void(std::span<const csm::Assignment>)>* on_match = nullptr);

 private:
  [[nodiscard]] InnerRunResult run_dynamic(
      const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
      util::Clock::time_point deadline,
      const std::function<void(std::span<const csm::Assignment>)>* on_match);
  /// Static round-robin seed partition with no re-balancing — the
  /// "unbalanced" baseline of Figure 10.
  [[nodiscard]] InnerRunResult run_static(
      const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
      util::Clock::time_point deadline,
      const std::function<void(std::span<const csm::Assignment>)>* on_match);

  WorkerPool& pool_;
  std::uint32_t split_depth_;
  bool dynamic_balance_;
};

}  // namespace paracosm::engine
