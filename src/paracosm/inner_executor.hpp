// Inner-update executor (paper §4.1, Algorithm 2).
//
// Initialization phase: root-level tasks (the update's seeds) are expanded
// breadth-first on the main thread until the concurrent queue holds at least
// one task per worker, decomposing the search tree into independent
// subtrees. Parallel phase: workers pop tasks and run the algorithm's own
// traversal routine; the injected split hook re-offloads direct subtasks
// whenever idle workers are observed, the queue is empty, and the depth is
// below SPLIT_DEPTH — the paper's adaptive task-sharing rule.
//
// The concurrent queue is the lock-free per-worker-deque CQ of
// task_queue.hpp and PERSISTS across run() calls, so steady-state updates
// reuse warm deque rings and recycled task nodes. Match callbacks are
// buffered per worker and delivered merged + lexicographically sorted after
// quiescence (match_buffer.hpp) — no lock on the match path.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "csm/algorithm.hpp"
#include "paracosm/config.hpp"
#include "paracosm/stats.hpp"
#include "paracosm/task_queue.hpp"
#include "paracosm/worker_pool.hpp"
#include "util/cancel.hpp"

namespace paracosm::engine {

struct InnerRunResult {
  std::uint64_t matches = 0;
  std::uint64_t nodes = 0;
  bool timed_out = false;
  bool cancelled = false;
  ParallelStats stats;
};

class InnerExecutor {
 public:
  InnerExecutor(WorkerPool& pool, std::uint32_t split_depth, bool dynamic_balance,
                QueueKnobs knobs = {});
  ~InnerExecutor();

  InnerExecutor(const InnerExecutor&) = delete;
  InnerExecutor& operator=(const InnerExecutor&) = delete;

  /// Explore all seeds' subtrees in parallel. `on_match` (optional) is
  /// delivered after quiescence, on the calling thread, in lexicographic
  /// (qv, dv) mapping order — deterministic for a given match set.
  [[nodiscard]] InnerRunResult run(
      const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
      util::Clock::time_point deadline = {},
      const std::function<void(std::span<const csm::Assignment>)>* on_match = nullptr,
      util::CancelView cancel = {});

  /// Re-route SPLIT_DEPTH for subsequent run() calls (the adaptive control
  /// plane publishes through ParaCosm's TuningView; the engine forwards here
  /// before each search). Must not be called while run() is in flight.
  void set_split_depth(std::uint32_t depth) noexcept { split_depth_ = depth; }
  [[nodiscard]] std::uint32_t split_depth() const noexcept {
    return split_depth_;
  }

 private:
  [[nodiscard]] InnerRunResult run_dynamic(
      const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
      util::Clock::time_point deadline,
      const std::function<void(std::span<const csm::Assignment>)>* on_match,
      util::CancelView cancel);
  /// Static round-robin seed partition with no re-balancing — the
  /// "unbalanced" baseline of Figure 10.
  [[nodiscard]] InnerRunResult run_static(
      const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
      util::Clock::time_point deadline,
      const std::function<void(std::span<const csm::Assignment>)>* on_match,
      util::CancelView cancel);

  WorkerPool& pool_;
  std::uint32_t split_depth_;
  bool dynamic_balance_;
  std::unique_ptr<TaskQueue> queue_;  ///< persistent CQ, warm across updates
};

}  // namespace paracosm::engine
