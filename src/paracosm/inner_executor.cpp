#include "paracosm/inner_executor.hpp"

#include "obs/trace_ring.hpp"
#include "paracosm/match_buffer.hpp"
#include "paracosm/task_queue.hpp"
#include "util/timer.hpp"

namespace paracosm::engine {

namespace {

/// Split hook handed to the traversal routine during the parallel phase:
/// the paper's `HasIdleThreads() && CQ.is_empty() && depth < SPLIT_DEPTH`.
class AdaptiveHook final : public csm::SplitHook {
 public:
  AdaptiveHook(TaskQueue& queue, unsigned wid, std::uint32_t split_depth,
               WorkerStats& ws) noexcept
      : queue_(queue), wid_(wid), split_depth_(split_depth), ws_(ws) {}

  [[nodiscard]] bool want_offload(std::uint32_t depth) noexcept override {
    return depth < split_depth_ && queue_.approx_size() == 0 &&
           queue_.has_idle_workers();
  }
  void offload(csm::SearchTask&& task) override {
    ++ws_.offloads;
    PARACOSM_TRACE_INSTANT(obs::EventKind::kResplit, task.depth());
    queue_.push(wid_, std::move(task));
  }

 private:
  TaskQueue& queue_;
  unsigned wid_;
  std::uint32_t split_depth_;
  WorkerStats& ws_;
};

/// Initialization-phase hook: Traverse_Next_Layer — always offload the
/// direct children of the task being expanded (round-robin across deques).
class ForcedSplitHook final : public csm::SplitHook {
 public:
  ForcedSplitHook(TaskQueue& queue, std::uint32_t at_depth) noexcept
      : queue_(queue), at_depth_(at_depth) {}

  [[nodiscard]] bool want_offload(std::uint32_t depth) noexcept override {
    return depth == at_depth_;
  }
  void offload(csm::SearchTask&& task) override { queue_.seed(std::move(task)); }

 private:
  TaskQueue& queue_;
  std::uint32_t at_depth_;
};

}  // namespace

InnerExecutor::InnerExecutor(WorkerPool& pool, std::uint32_t split_depth,
                             bool dynamic_balance, QueueKnobs knobs)
    : pool_(pool),
      split_depth_(split_depth),
      dynamic_balance_(dynamic_balance),
      queue_(std::make_unique<TaskQueue>(pool.size(), knobs)) {}

InnerExecutor::~InnerExecutor() = default;

InnerRunResult InnerExecutor::run(
    const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
    util::Clock::time_point deadline,
    const std::function<void(std::span<const csm::Assignment>)>* on_match,
    util::CancelView cancel) {
  if (seeds.empty()) return {};
  return dynamic_balance_
             ? run_dynamic(alg, std::move(seeds), deadline, on_match, cancel)
             : run_static(alg, std::move(seeds), deadline, on_match, cancel);
}

InnerRunResult InnerExecutor::run_dynamic(
    const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
    util::Clock::time_point deadline,
    const std::function<void(std::span<const csm::Assignment>)>* on_match,
    util::CancelView cancel) {
  InnerRunResult result;
  const unsigned n = pool_.size();
  result.stats.ensure_size(n);
  TaskQueue& queue = *queue_;  // persistent across updates: warm deques/nodes

  // Per-worker match logs (last slot = the single-threaded init phase);
  // merged and delivered in deterministic order at quiescence.
  std::vector<MatchBuffer> match_bufs;
  if (on_match != nullptr) match_bufs.resize(n + 1);

  util::ThreadCpuTimer serial_timer;
  for (csm::SearchTask& seed : seeds) queue.seed(std::move(seed));

  // Initialization phase: BFS-expand shallow tasks until there is enough
  // fan-out for every worker. Tasks at or beyond SPLIT_DEPTH are parked —
  // further splitting is not allowed for them anyway.
  csm::MatchSink init_sink;
  init_sink.deadline = deadline;
  init_sink.cancel = cancel;
  if (on_match != nullptr)
    init_sink.on_match = [&match_bufs, n](std::span<const csm::Assignment> m) {
      match_bufs[n].append(m);
    };
  std::vector<csm::SearchTask> parked;
  while (queue.approx_size() + parked.size() < n) {
    auto task = queue.try_pop();
    if (!task) break;
    if (task->depth() >= split_depth_) {
      parked.push_back(std::move(*task));
      continue;  // in_flight stays raised; re-pushed below
    }
    ForcedSplitHook hook(queue, task->depth());
    alg.expand(*task, init_sink, &hook);
    queue.retire();
    if (init_sink.stopped()) break;
  }
  // Re-queue parked tasks without double-counting in_flight.
  for (csm::SearchTask& task : parked) {
    queue.seed(std::move(task));
    queue.retire();
  }
  result.matches += init_sink.matches;
  result.nodes += init_sink.nodes;
  result.timed_out = result.timed_out || init_sink.timed_out();
  result.cancelled = result.cancelled || init_sink.cancelled();
  result.stats.serial_ns += serial_timer.elapsed_ns();

  std::atomic<bool> any_timed_out{false};
  std::atomic<bool> any_cancelled{false};
  pool_.run([&](unsigned wid) {
    WorkerStats& ws = result.stats.workers[wid];
    csm::MatchSink sink;
    sink.deadline = deadline;
    sink.cancel = cancel;
    if (on_match != nullptr)
      sink.on_match = [buf = &match_bufs[wid]](std::span<const csm::Assignment> m) {
        buf->append(m);
      };
    AdaptiveHook hook(queue, wid, split_depth_, ws);
    // expand() draws its partial-match state from this worker's thread_local
    // SearchScratch pool (csm/scratch.hpp), so the loop below performs no
    // per-task allocations once the pool has warmed up. Busy time covers
    // pop + expand but not the idle spin inside pop_or_finish, keeping the
    // simulated-makespan accounting comparable across schedulers.
    while (auto task = queue.pop_or_finish(wid)) {
      // Dispatch-path cancel check (ISSUE 4): a cancelled epoch drains the
      // queue without expanding, so workers converge even when individual
      // tasks are tiny and never reach the in-search amortized probe.
      if (cancel.active() && cancel.cancelled()) {
        sink.mark_cancelled();
        queue.retire();
        ++ws.tasks;
        continue;
      }
      util::ThreadCpuTimer timer;
      {
        PARACOSM_TRACE_SPAN(task_span, obs::EventKind::kTaskExpand,
                            task->depth());
        alg.expand(*task, sink, &hook);
      }
      queue.retire();
      ++ws.tasks;
      ws.busy_ns += timer.elapsed_ns();
    }
    ws.nodes += sink.nodes;
    ws.matches += sink.matches;
    queue.export_counters(wid, ws);
    if (sink.timed_out()) any_timed_out.store(true, std::memory_order_relaxed);
    if (sink.cancelled()) any_cancelled.store(true, std::memory_order_relaxed);
  });
  result.stats.dispatch_ns += pool_.last_dispatch_ns();
  for (const WorkerStats& ws : result.stats.workers) {
    result.matches += ws.matches;
    result.nodes += ws.nodes;
  }
  result.timed_out =
      result.timed_out || any_timed_out.load(std::memory_order_relaxed);
  result.cancelled =
      result.cancelled || any_cancelled.load(std::memory_order_relaxed);

  if (on_match != nullptr) emit_merged_sorted(match_bufs, *on_match);
  return result;
}

InnerRunResult InnerExecutor::run_static(
    const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
    util::Clock::time_point deadline,
    const std::function<void(std::span<const csm::Assignment>)>* on_match,
    util::CancelView cancel) {
  InnerRunResult result;
  const unsigned n = pool_.size();
  result.stats.ensure_size(n);

  // Round-robin partition, no queue, no splitting: each worker owns a fixed
  // share of the root tasks regardless of how skewed their subtrees are.
  std::vector<std::vector<csm::SearchTask>> shares(n);
  for (std::size_t i = 0; i < seeds.size(); ++i)
    shares[i % shares.size()].push_back(std::move(seeds[i]));

  std::vector<MatchBuffer> match_bufs;
  if (on_match != nullptr) match_bufs.resize(n);

  std::atomic<bool> any_timed_out{false};
  std::atomic<bool> any_cancelled{false};
  pool_.run([&](unsigned wid) {
    WorkerStats& ws = result.stats.workers[wid];
    csm::MatchSink sink;
    sink.deadline = deadline;
    sink.cancel = cancel;
    if (on_match != nullptr)
      sink.on_match = [buf = &match_bufs[wid]](std::span<const csm::Assignment> m) {
        buf->append(m);
      };
    util::ThreadCpuTimer timer;
    for (const csm::SearchTask& task : shares[wid]) {
      if (cancel.active() && cancel.cancelled()) {
        sink.mark_cancelled();
        break;
      }
      {
        PARACOSM_TRACE_SPAN(task_span, obs::EventKind::kTaskExpand,
                            task.depth());
        alg.expand(task, sink, nullptr);
      }
      ++ws.tasks;
      if (sink.stopped()) break;
    }
    ws.busy_ns += timer.elapsed_ns();
    ws.nodes += sink.nodes;
    ws.matches += sink.matches;
    if (sink.timed_out()) any_timed_out.store(true, std::memory_order_relaxed);
    if (sink.cancelled()) any_cancelled.store(true, std::memory_order_relaxed);
  });
  result.stats.dispatch_ns += pool_.last_dispatch_ns();
  for (const WorkerStats& ws : result.stats.workers) {
    result.matches += ws.matches;
    result.nodes += ws.nodes;
  }
  result.timed_out = any_timed_out.load(std::memory_order_relaxed);
  result.cancelled = any_cancelled.load(std::memory_order_relaxed);

  if (on_match != nullptr) emit_merged_sorted(match_bufs, *on_match);
  return result;
}

}  // namespace paracosm::engine
