#include "paracosm/inner_executor.hpp"

#include <mutex>

#include "paracosm/task_queue.hpp"
#include "util/timer.hpp"

namespace paracosm::engine {

namespace {

/// Split hook handed to the traversal routine during the parallel phase:
/// the paper's `HasIdleThreads() && CQ.is_empty() && depth < SPLIT_DEPTH`.
class AdaptiveHook final : public csm::SplitHook {
 public:
  AdaptiveHook(TaskQueue& queue, std::uint32_t split_depth) noexcept
      : queue_(queue), split_depth_(split_depth) {}

  [[nodiscard]] bool want_offload(std::uint32_t depth) noexcept override {
    return depth < split_depth_ && queue_.approx_size() == 0 &&
           queue_.has_idle_workers();
  }
  void offload(csm::SearchTask&& task) override { queue_.push(std::move(task)); }

 private:
  TaskQueue& queue_;
  std::uint32_t split_depth_;
};

/// Initialization-phase hook: Traverse_Next_Layer — always offload the
/// direct children of the task being expanded.
class ForcedSplitHook final : public csm::SplitHook {
 public:
  ForcedSplitHook(TaskQueue& queue, std::uint32_t at_depth) noexcept
      : queue_(queue), at_depth_(at_depth) {}

  [[nodiscard]] bool want_offload(std::uint32_t depth) noexcept override {
    return depth == at_depth_;
  }
  void offload(csm::SearchTask&& task) override { queue_.push(std::move(task)); }

 private:
  TaskQueue& queue_;
  std::uint32_t at_depth_;
};

}  // namespace

InnerRunResult InnerExecutor::run(
    const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
    util::Clock::time_point deadline,
    const std::function<void(std::span<const csm::Assignment>)>* on_match) {
  if (seeds.empty()) return {};
  return dynamic_balance_ ? run_dynamic(alg, std::move(seeds), deadline, on_match)
                          : run_static(alg, std::move(seeds), deadline, on_match);
}

InnerRunResult InnerExecutor::run_dynamic(
    const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
    util::Clock::time_point deadline,
    const std::function<void(std::span<const csm::Assignment>)>* on_match) {
  InnerRunResult result;
  result.stats.ensure_size(pool_.size());

  TaskQueue queue;
  std::mutex match_mutex;
  const auto guarded_match = [&](std::span<const csm::Assignment> m) {
    const std::lock_guard lock(match_mutex);
    (*on_match)(m);
  };

  util::ThreadCpuTimer serial_timer;
  for (csm::SearchTask& seed : seeds) queue.push(std::move(seed));

  // Initialization phase: BFS-expand shallow tasks until there is enough
  // fan-out for every worker. Tasks at or beyond SPLIT_DEPTH are parked —
  // further splitting is not allowed for them anyway.
  csm::MatchSink init_sink;
  init_sink.deadline = deadline;
  if (on_match != nullptr) init_sink.on_match = guarded_match;
  std::vector<csm::SearchTask> parked;
  while (queue.approx_size() + parked.size() < pool_.size()) {
    auto task = queue.try_pop();
    if (!task) break;
    if (task->depth() >= split_depth_) {
      parked.push_back(std::move(*task));
      continue;  // in_flight stays raised; re-pushed below
    }
    ForcedSplitHook hook(queue, task->depth());
    alg.expand(*task, init_sink, &hook);
    queue.retire();
    if (init_sink.timed_out()) break;
  }
  // Re-queue parked tasks without double-counting in_flight.
  for (csm::SearchTask& task : parked) {
    queue.push(std::move(task));
    queue.retire();
  }
  result.matches += init_sink.matches;
  result.nodes += init_sink.nodes;
  result.timed_out = result.timed_out || init_sink.timed_out();
  result.stats.serial_ns += serial_timer.elapsed_ns();

  pool_.run([&](unsigned wid) {
    WorkerStats& ws = result.stats.workers[wid];
    csm::MatchSink sink;
    sink.deadline = deadline;
    if (on_match != nullptr) sink.on_match = guarded_match;
    AdaptiveHook hook(queue, split_depth_);
    util::ThreadCpuTimer timer;
    // expand() draws its partial-match state from this worker's thread_local
    // SearchScratch pool (csm/scratch.hpp), so the loop below performs no
    // per-task allocations once the pool has warmed up.
    while (auto task = queue.pop_or_finish()) {
      alg.expand(*task, sink, &hook);
      queue.retire();
      ++ws.tasks;
    }
    ws.busy_ns += timer.elapsed_ns();
    ws.nodes += sink.nodes;
    ws.matches += sink.matches;
    {
      const std::lock_guard lock(match_mutex);
      result.matches += sink.matches;
      result.nodes += sink.nodes;
      result.timed_out = result.timed_out || sink.timed_out();
    }
  });
  return result;
}

InnerRunResult InnerExecutor::run_static(
    const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
    util::Clock::time_point deadline,
    const std::function<void(std::span<const csm::Assignment>)>* on_match) {
  InnerRunResult result;
  result.stats.ensure_size(pool_.size());

  // Round-robin partition, no queue, no splitting: each worker owns a fixed
  // share of the root tasks regardless of how skewed their subtrees are.
  std::vector<std::vector<csm::SearchTask>> shares(pool_.size());
  for (std::size_t i = 0; i < seeds.size(); ++i)
    shares[i % shares.size()].push_back(std::move(seeds[i]));

  std::mutex merge_mutex;
  const auto guarded_match = [&](std::span<const csm::Assignment> m) {
    const std::lock_guard lock(merge_mutex);
    (*on_match)(m);
  };

  pool_.run([&](unsigned wid) {
    WorkerStats& ws = result.stats.workers[wid];
    csm::MatchSink sink;
    sink.deadline = deadline;
    if (on_match != nullptr) sink.on_match = guarded_match;
    util::ThreadCpuTimer timer;
    for (const csm::SearchTask& task : shares[wid]) {
      alg.expand(task, sink, nullptr);
      ++ws.tasks;
      if (sink.timed_out()) break;
    }
    ws.busy_ns += timer.elapsed_ns();
    ws.nodes += sink.nodes;
    ws.matches += sink.matches;
    {
      const std::lock_guard lock(merge_mutex);
      result.matches += sink.matches;
      result.nodes += sink.nodes;
      result.timed_out = result.timed_out || sink.timed_out();
    }
  });
  return result;
}

}  // namespace paracosm::engine
