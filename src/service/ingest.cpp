#include "service/ingest.hpp"

#include <chrono>
#include <thread>

#include "util/timer.hpp"

namespace paracosm::service {

namespace {

/// Shared spin → yield → sleep schedule for both the blocked producer and
/// the idle consumer. Sleep doubles up to ~1ms so a stalled peer costs
/// microseconds of latency, not a hot core.
struct Backoff {
  unsigned round = 0;

  void wait() noexcept {
    if (round < 64) {
      // busy spin
    } else if (round < 96) {
      std::this_thread::yield();
    } else {
      const unsigned exp = round - 96 < 10 ? round - 96 : 10;
      std::this_thread::sleep_for(std::chrono::microseconds(1u << exp));
    }
    ++round;
  }
};

[[nodiscard]] std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

IngestQueue::IngestQueue(std::size_t capacity, OverloadPolicy policy)
    : cells_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(cells_.size() - 1),
      policy_(policy) {
  for (std::size_t i = 0; i < cells_.size(); ++i)
    cells_[i].seq.store(i, std::memory_order_relaxed);
}

bool IngestQueue::try_push(const IngestItem& item) {
  std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
    if (diff == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.item = item;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // full
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool IngestQueue::try_pop(IngestItem& out) {
  std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(seq) -
                      static_cast<std::intptr_t>(pos + 1);
    if (diff == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        out = cell.item;
        cell.seq.store(pos + cells_.size(), std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // empty
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
}

void IngestQueue::note_depth() noexcept {
  const std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
  const std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
  const std::uint64_t depth = enq > deq ? enq - deq : 0;
  std::uint64_t seen = high_water_.load(std::memory_order_relaxed);
  while (depth > seen && !high_water_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

std::size_t IngestQueue::approx_size() const noexcept {
  const std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
  const std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
  return enq > deq ? enq - deq : 0;
}

PushResult IngestQueue::push(const graph::GraphUpdate& upd) {
  if (closed()) return PushResult::kClosed;
  IngestItem item{upd, false};
  // Early-degrade watermark (adaptive admission): demote before the ring is
  // hard-full so the consumer sheds delivery cost while latency is climbing,
  // not after the queue has already saturated.
  if (policy_ == OverloadPolicy::kDegrade) {
    const std::size_t wm = degrade_watermark_.load(std::memory_order_relaxed);
    if (wm != 0 && approx_size() >= wm) item.degraded = true;
  }
  if (try_push(item)) {
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    if (item.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
    note_depth();
    return item.degraded ? PushResult::kDegraded : PushResult::kOk;
  }

  // Full ring: the overload edge.
  if (policy_ == OverloadPolicy::kShed) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return PushResult::kShed;
  }
  if (policy_ == OverloadPolicy::kDegrade) item.degraded = true;

  blocked_pushes_.fetch_add(1, std::memory_order_relaxed);
  util::WallTimer timer;
  Backoff backoff;
  while (!try_push(item)) {
    if (closed()) {
      blocked_ns_.fetch_add(timer.elapsed_ns(), std::memory_order_relaxed);
      return PushResult::kClosed;
    }
    backoff.wait();
  }
  blocked_ns_.fetch_add(timer.elapsed_ns(), std::memory_order_relaxed);
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (item.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
  note_depth();
  return item.degraded ? PushResult::kDegraded : PushResult::kOk;
}

bool IngestQueue::pop_wait(IngestItem& out) {
  Backoff backoff;
  for (;;) {
    if (try_pop(out)) return true;
    // The acquire-load of closed_ synchronizes with the producer's
    // release-store, so any push sequenced before close() is visible to the
    // final drain probe below.
    if (closed()) return try_pop(out);
    backoff.wait();
  }
}

engine::IngestStats IngestQueue::stats() const {
  engine::IngestStats s;
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.blocked_pushes = blocked_pushes_.load(std::memory_order_relaxed);
  s.blocked_ns = blocked_ns_.load(std::memory_order_relaxed);
  s.high_water = high_water_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace paracosm::service
