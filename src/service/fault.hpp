// Fault-injection hooks for the service layer (ISSUE 4).
//
// The hooks are plain std::functions threaded into StreamService so the
// fuzzer and the crash-recovery tests can trigger the three failure modes
// the overload/durability design exists to survive — at precise, seeded
// points rather than by luck:
//
//   * after_wal_append — runs between WAL flush and engine apply: the
//     redo-window a crash test kills the process inside (std::_Exit), proving
//     recovery replays the appended-but-unapplied record.
//   * force_timeout    — marks an update's search as over-budget the moment
//     it is armed (the token's fresh epoch is cancelled immediately), giving
//     a deterministic "watchdog fired" outcome without racing real time.
//   * slow_consumer    — artificial delay at the top of the consumer loop,
//     backing the ring up so the overload policies actually engage.
#pragma once

#include <cstdint>
#include <functional>

namespace paracosm::service {

struct FaultHooks {
  /// Called with the just-durable record's seq, before the update is applied.
  std::function<void(std::uint64_t seq)> after_wal_append;
  /// Return true to cancel the search for record `seq` deterministically.
  std::function<bool(std::uint64_t seq)> force_timeout;
  /// Called once per consumed item before any processing.
  std::function<void()> slow_consumer;
};

}  // namespace paracosm::service
