// MultiStreamService: the standing-query front door (ISSUE 6).
//
// Wraps a MultiQueryEngine behind the same bounded ingest ring StreamService
// uses, adding a runtime *admin plane*: queries can be registered and removed
// while the stream is live. Admin operations are serialized with update
// processing by the consumer thread itself — callers enqueue a closure and
// block until the consumer executes it between updates, so add_query's
// index/anchor-table surgery never races a classification pass and a newly
// registered query observes exactly the updates submitted after its
// registration returned (see test_multi_query.cpp AddRemoveMidStream).
//
// Per the durability pipeline, an optional WAL records the admitted update
// order (redo semantics, wal.hpp) — but unlike StreamService there is no
// snapshot/recovery path in multi mode yet: recovery would also have to
// re-register the query catalogue, which lives outside the WAL. The log is
// still useful as an audit trail and for offline replay.
//
// Threading contract: any number of submit() callers; add_query / remove_query
// / drain / finish must come from one control thread and must not race each
// other; finish() must not race submit().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "paracosm/multi_query.hpp"
#include "service/ingest.hpp"
#include "service/wal.hpp"
#include "util/timer.hpp"

namespace paracosm::service {

struct MultiServiceOptions {
  std::size_t queue_capacity = 1024;
  OverloadPolicy policy = OverloadPolicy::kBlock;

  /// Per-update wall budget in microseconds (deadline handed to the engine's
  /// process_stream for each update); 0 = none. Per-*query* budgets are the
  /// engine's QueryOptions::budget_us and compose with this.
  std::int64_t budget_us = 0;

  std::string wal_path;  ///< empty = durability off (see file comment)
};

struct MultiServiceReport {
  engine::ServiceStats stats;   ///< ingest + processed + wal_records
  engine::MultiQueryStats mq;   ///< shared-evaluation tier counters
  engine::ParallelStats exec;   ///< executor accounting across all updates
  /// Indexed by query handle, accumulated across the whole run (slots of
  /// queries removed mid-run keep their totals).
  std::vector<std::uint64_t> positive;
  std::vector<std::uint64_t> negative;
  std::vector<std::uint64_t> degraded;
  std::uint64_t deadline_hits = 0;  ///< updates cut by the per-update budget
  std::int64_t wall_ns = 0;
  obs::Histogram latency;  ///< per-update end-to-end ns (pop -> processed)
  std::string error;       ///< non-empty if the consumer died (e.g. WAL I/O)
};

class MultiStreamService {
 public:
  /// Queries may be pre-registered on the engine before construction;
  /// afterwards use add_query(). The consumer thread starts immediately.
  MultiStreamService(engine::MultiQueryEngine& engine, MultiServiceOptions opts);
  ~MultiStreamService();

  MultiStreamService(const MultiStreamService&) = delete;
  MultiStreamService& operator=(const MultiStreamService&) = delete;

  /// Producer side. kShed means the update went to the defer log (delayed,
  /// never dropped); kClosed means finish() already ran.
  PushResult submit(const graph::GraphUpdate& upd);

  /// Admin plane (runtime registration). Blocks until the consumer thread has
  /// applied the change between updates; the handle is live from the next
  /// submitted update onwards. Throws what the engine throws (e.g. unknown
  /// algorithm).
  std::size_t add_query(std::string algorithm, graph::QueryGraph query,
                        engine::QueryOptions qopts = {});
  bool remove_query(std::size_t handle);

  /// Barrier: returns once every update submitted before the call (including
  /// deferred ones) has been processed. Admin ops enqueued before drain() are
  /// applied too.
  void drain();

  /// Close the ring, drain everything, join the consumer, and return the
  /// final report. One-shot.
  [[nodiscard]] MultiServiceReport finish();

  [[nodiscard]] const IngestQueue& queue() const noexcept { return queue_; }

 private:
  struct AdminOp {
    std::function<void()> fn;
    bool done = false;
    std::exception_ptr error;
  };

  void consumer_loop();
  void process_one(const graph::GraphUpdate& upd);
  void run_admin();
  [[nodiscard]] bool pop_deferred(graph::GraphUpdate& out);
  template <typename F>
  auto run_on_consumer(F&& fn) -> decltype(fn());

  engine::MultiQueryEngine& engine_;
  MultiServiceOptions opts_;
  IngestQueue queue_;
  std::optional<WalWriter> wal_;

  std::mutex admin_m_;
  std::condition_variable admin_cv_;
  std::deque<AdminOp*> admin_queue_;

  std::mutex defer_m_;
  std::deque<graph::GraphUpdate> defer_log_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::mutex drain_m_;
  std::condition_variable drain_cv_;

  // Consumer-thread state.
  engine::ServiceStats stats_;
  engine::MultiQueryStats mq_;
  engine::ParallelStats exec_;
  std::vector<std::uint64_t> positive_;
  std::vector<std::uint64_t> negative_;
  std::vector<std::uint64_t> degraded_;
  std::uint64_t deadline_hits_ = 0;
  obs::Histogram latency_hist_;
  std::string error_;

  util::WallTimer wall_;
  std::thread consumer_;
  bool finished_ = false;
};

}  // namespace paracosm::service
