// Bounded ingest ring between the stream reader and the executors
// (DESIGN.md §7.1).
//
// The ring is a fixed-capacity Vyukov-style MPMC queue (per-cell sequence
// numbers, two monotonic cursors) used MPSC here: any number of producer
// threads call push(), the single service consumer calls pop_wait(). Bounding
// the ring is the whole point — it converts an ingest burst into an explicit,
// *observable* overload event instead of an unbounded heap of queued work.
// What happens at the full-ring edge is the overload policy:
//
//   kBlock   — the producer backs off (spin → yield → sleep, exponential)
//              until space frees; classic backpressure. Time spent is
//              accounted in blocked_ns.
//   kShed    — push returns kShed immediately; the caller moves the update
//              to a defer log and retries later (delayed, never dropped).
//   kDegrade — the update is still admitted (blocking) but flagged degraded:
//              the consumer processes it count-only, skipping per-mapping
//              delivery — the expensive half of a match-heavy update. ΔM
//              counts and graph/ADS state stay exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "paracosm/stats.hpp"

namespace paracosm::service {

enum class OverloadPolicy : std::uint8_t { kBlock, kShed, kDegrade };

[[nodiscard]] constexpr const char* to_string(OverloadPolicy p) noexcept {
  switch (p) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kDegrade: return "degrade";
  }
  return "?";
}

enum class PushResult : std::uint8_t {
  kOk,        ///< admitted
  kDegraded,  ///< admitted, demoted to count-only delivery
  kShed,      ///< rejected: caller must defer-log it
  kClosed,    ///< queue closed; nothing admitted
};

/// One admitted ring entry. `degraded` rides with the update so the consumer
/// knows to suppress per-mapping delivery for exactly the overload victims.
struct IngestItem {
  graph::GraphUpdate upd;
  bool degraded = false;
};

class IngestQueue {
 public:
  /// Capacity is rounded up to a power of two (min 2).
  IngestQueue(std::size_t capacity, OverloadPolicy policy);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Producer side; applies the overload policy at the full-ring edge.
  [[nodiscard]] PushResult push(const graph::GraphUpdate& upd);

  /// Consumer side: blocks (spin → yield → sleep backoff) until an item
  /// arrives or the queue is closed *and* drained. Returns false on the
  /// latter — the consumer's termination signal.
  [[nodiscard]] bool pop_wait(IngestItem& out);

  /// Non-blocking pop (drain paths and tests).
  [[nodiscard]] bool try_pop(IngestItem& out);

  /// After close(), pushes return kClosed and pop_wait drains then stops.
  void close() noexcept { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t approx_size() const noexcept;

  /// Adaptive early-degrade threshold (DESIGN.md §13): under kDegrade a push
  /// is demoted to count-only as soon as the queue depth reaches the
  /// watermark, not only at the hard full-ring edge. 0 (the default) or
  /// >= capacity restores the static behaviour. Relaxed atomic — the
  /// admission controller republishes it from the consumer thread while
  /// producers read it.
  void set_degrade_watermark(std::size_t wm) noexcept {
    degrade_watermark_.store(wm, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t degrade_watermark() const noexcept {
    return degrade_watermark_.load(std::memory_order_relaxed);
  }

  /// Consistent-enough snapshot of the producer/consumer counters.
  [[nodiscard]] engine::IngestStats stats() const;

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    IngestItem item;
  };

  [[nodiscard]] bool try_push(const IngestItem& item);
  void note_depth() noexcept;

  std::vector<Cell> cells_;
  std::size_t mask_;
  OverloadPolicy policy_;
  std::atomic<bool> closed_{false};
  std::atomic<std::size_t> degrade_watermark_{0};

  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};

  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> blocked_pushes_{0};
  std::atomic<std::int64_t> blocked_ns_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

}  // namespace paracosm::service
