#include "service/wal.hpp"

#include <array>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "graph/graph_io.hpp"
#include "util/checksum.hpp"

namespace paracosm::service {

namespace {

void put_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
[[nodiscard]] std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

using RecordBuf = std::array<unsigned char, kWalRecordBytes>;

void encode_record(std::uint64_t seq, const graph::GraphUpdate& upd,
                   RecordBuf& buf) noexcept {
  put_u64(buf.data(), seq);
  put_u32(buf.data() + 8, static_cast<std::uint32_t>(upd.op));
  put_u32(buf.data() + 12, upd.u);
  put_u32(buf.data() + 16, upd.v);
  put_u32(buf.data() + 20, upd.label);
  put_u64(buf.data() + 24, wal_checksum(seq, upd));
}

}  // namespace

std::uint64_t wal_checksum(std::uint64_t seq,
                           const graph::GraphUpdate& upd) noexcept {
  std::uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(seq));
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(seq >> 32));
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(upd.op));
  h = util::fnv1a_word(h, upd.u);
  h = util::fnv1a_word(h, upd.v);
  h = util::fnv1a_word(h, upd.label);
  return h;
}

WalWriter::WalWriter(const std::string& path, bool truncate,
                     std::uint64_t next_seq)
    : path_(path), next_seq_(next_seq) {
  const auto mode = std::ios::binary |
                    (truncate ? std::ios::trunc : std::ios::app);
  out_.open(path, mode);
  if (!out_) throw std::runtime_error("wal: cannot open '" + path + "'");
}

std::uint64_t WalWriter::append(const graph::GraphUpdate& upd) {
  const std::uint64_t seq = next_seq_++;
  RecordBuf buf;
  encode_record(seq, upd, buf);
  out_.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
  if (!out_) throw std::runtime_error("wal: write failed on '" + path_ + "'");
  return seq;
}

void WalWriter::flush() {
  out_.flush();
  if (!out_) throw std::runtime_error("wal: flush failed on '" + path_ + "'");
}

WalReadResult read_wal(const std::string& path) {
  WalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // absent file == empty log

  RecordBuf buf;
  std::uint64_t expect_seq = 0;
  bool have_seq = false;
  for (;;) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    const auto got = in.gcount();
    if (got == 0 && in.eof()) break;  // clean end
    if (got != static_cast<std::streamsize>(kWalRecordBytes)) {
      result.torn_tail = true;  // short read: crash mid-append
      break;
    }
    WalRecord rec;
    rec.seq = get_u64(buf.data());
    const std::uint32_t op = get_u32(buf.data() + 8);
    rec.upd.op = static_cast<graph::UpdateOp>(op);
    rec.upd.u = get_u32(buf.data() + 12);
    rec.upd.v = get_u32(buf.data() + 16);
    rec.upd.label = get_u32(buf.data() + 20);
    const std::uint64_t stored = get_u64(buf.data() + 24);
    if (op > static_cast<std::uint32_t>(graph::UpdateOp::kRemoveVertex) ||
        stored != wal_checksum(rec.seq, rec.upd) ||
        (have_seq && rec.seq != expect_seq)) {
      result.torn_tail = true;  // bit rot or a torn rewrite
      break;
    }
    have_seq = true;
    expect_seq = rec.seq + 1;
    result.records.push_back(rec);
    result.valid_bytes += kWalRecordBytes;
  }
  return result;
}

void truncate_wal(const std::string& path, std::uint64_t valid_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec)
    throw std::runtime_error("wal: cannot truncate '" + path +
                             "': " + ec.message());
}

void write_snapshot(const std::string& path, const graph::DataGraph& g,
                    const SnapshotMeta& meta) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("snapshot: cannot open '" + tmp + "'");
    out << "# paracosm-snapshot 1 seq=" << meta.seq << " ads=" << std::hex
        << meta.ads_checksum << std::dec << " alg=" << meta.algorithm << "\n";
    graph::save_data_graph(g, out);
    out.flush();
    if (!out)
      throw std::runtime_error("snapshot: write failed on '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("snapshot: rename to '" + path +
                             "' failed: " + ec.message());
}

std::optional<Snapshot> read_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::string header;
  if (!std::getline(in, header)) return std::nullopt;
  std::istringstream hs(header);
  std::string hash, tag;
  int version = 0;
  hs >> hash >> tag >> version;
  if (hash != "#" || tag != "paracosm-snapshot" || version != 1)
    return std::nullopt;

  Snapshot snap;
  bool have_seq = false, have_ads = false;
  std::string field;
  while (hs >> field) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    try {
      if (key == "seq") {
        snap.meta.seq = std::stoull(value);
        have_seq = true;
      } else if (key == "ads") {
        snap.meta.ads_checksum = std::stoull(value, nullptr, 16);
        have_ads = true;
      } else if (key == "alg") {
        snap.meta.algorithm = value;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (!have_seq || !have_ads) return std::nullopt;

  try {
    snap.graph = graph::load_data_graph(in);
  } catch (const graph::ParseException&) {
    return std::nullopt;  // truncated/corrupt body: fall back to base + WAL
  }
  return snap;
}

RecoveredState recover_state(const graph::DataGraph& base,
                             const std::string& wal_path,
                             const std::string& snapshot_path) {
  RecoveredState state;
  std::uint64_t replay_from = 0;

  if (!snapshot_path.empty()) {
    if (auto snap = read_snapshot(snapshot_path)) {
      state.graph = std::move(snap->graph);
      state.snapshot = snap->meta;
      state.used_snapshot = true;
      replay_from = snap->meta.seq;
    }
  }
  if (!state.used_snapshot) state.graph = base;

  WalReadResult wal = read_wal(wal_path);
  if (wal.torn_tail) {
    truncate_wal(wal_path, wal.valid_bytes);
    state.torn_tail_truncated = true;
  }
  state.next_seq = replay_from;
  for (const WalRecord& rec : wal.records) {
    state.next_seq = rec.seq + 1;
    if (rec.seq < replay_from) continue;  // already inside the snapshot
    // Idempotent redo: a record whose effect survived the crash (append
    // happened, apply happened, then crash) replays as a no-op.
    state.graph.apply(rec.upd);
    ++state.replayed;
  }
  return state;
}

}  // namespace paracosm::service
