#include "service/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "graph/graph_io.hpp"
#include "util/checksum.hpp"

namespace paracosm::service {

namespace {

void put_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
[[nodiscard]] std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

using RecordBuf = std::array<unsigned char, kWalRecordBytes>;

void encode_record(std::uint64_t seq, const graph::GraphUpdate& upd,
                   RecordBuf& buf) noexcept {
  put_u64(buf.data(), seq);
  put_u32(buf.data() + 8, static_cast<std::uint32_t>(upd.op));
  put_u32(buf.data() + 12, upd.u);
  put_u32(buf.data() + 16, upd.v);
  put_u32(buf.data() + 20, upd.label);
  put_u64(buf.data() + 24, wal_checksum(seq, upd));
}

[[nodiscard]] std::uint64_t header_checksum(std::uint32_t version,
                                            std::uint32_t fingerprint) noexcept {
  std::uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(kWalMagic));
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(kWalMagic >> 32));
  h = util::fnv1a_word(h, version);
  h = util::fnv1a_word(h, fingerprint);
  return h;
}

void encode_header(std::uint32_t fingerprint, RecordBuf& buf) noexcept {
  put_u64(buf.data(), kWalMagic);
  put_u32(buf.data() + 8, kWalVersion);
  put_u32(buf.data() + 12, fingerprint);
  put_u64(buf.data() + 16, 0);  // reserved
  put_u64(buf.data() + 24, header_checksum(kWalVersion, fingerprint));
}

/// Errors worth retrying: interrupted syscalls, a momentarily full pipe
/// buffer, and disk-full conditions that an operator (or log rotation) can
/// clear while the service keeps running.
[[nodiscard]] bool transient_errno(int err) noexcept {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK || err == ENOSPC;
}

}  // namespace

std::uint64_t wal_checksum(std::uint64_t seq,
                           const graph::GraphUpdate& upd) noexcept {
  std::uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(seq));
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(seq >> 32));
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(upd.op));
  h = util::fnv1a_word(h, upd.u);
  h = util::fnv1a_word(h, upd.v);
  h = util::fnv1a_word(h, upd.label);
  return h;
}

std::uint32_t graph_fingerprint(const graph::DataGraph& g) noexcept {
  std::uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_word(h, g.vertex_capacity());
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(g.num_edges()));
  for (graph::VertexId v = 0; v < g.vertex_capacity(); ++v) {
    if (!g.has_vertex(v)) continue;
    h = util::fnv1a_word(h, v);
    h = util::fnv1a_word(h, g.label(v));
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

// ---------------------------------------------------------------- WalWriter

WalWriter::WalWriter(const std::string& path, bool truncate,
                     std::uint64_t next_seq, std::uint32_t fingerprint)
    : path_(path), next_seq_(next_seq) {
  const int flags =
      O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0) | O_CLOEXEC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0)
    throw std::runtime_error("wal: cannot open '" + path +
                             "': " + std::strerror(errno));
  if (truncate) {
    RecordBuf buf;
    encode_header(fingerprint, buf);
    write_all(buf.data(), buf.size());
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

bool WalWriter::fault_fires() noexcept {
  if (fault_remaining_ <= 0) return false;
  --fault_remaining_;
  errno = fault_errno_;
  return true;
}

void WalWriter::write_all(const unsigned char* data, std::size_t len) {
  // Bounded retry with capped exponential backoff: EINTR retries immediately,
  // EAGAIN/ENOSPC back off 1ms, 2ms, ... capped at 50ms; after kMaxAttempts
  // consecutive failures the error is permanent and the update fails loudly.
  constexpr int kMaxAttempts = 8;
  constexpr std::int64_t kMaxBackoffMs = 50;
  std::size_t off = 0;
  int attempt = 0;
  while (off < len) {
    ssize_t n;
    if (fault_fires()) {
      n = -1;
    } else {
      n = ::write(fd_, data + off, len - off);
    }
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      attempt = 0;
      continue;
    }
    const int err = errno;
    if (!transient_errno(err) || ++attempt >= kMaxAttempts)
      throw std::runtime_error("wal: write failed on '" + path_ +
                               "': " + std::strerror(err));
    ++retries_;
    if (err != EINTR) {
      const std::int64_t ms =
          std::min<std::int64_t>(std::int64_t{1} << (attempt - 1), kMaxBackoffMs);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
}

std::uint64_t WalWriter::append(const graph::GraphUpdate& upd) {
  const std::uint64_t seq = next_seq_++;
  RecordBuf buf;
  encode_record(seq, upd, buf);
  write_all(buf.data(), buf.size());
  return seq;
}

void WalWriter::flush() {
  constexpr int kMaxAttempts = 8;
  constexpr std::int64_t kMaxBackoffMs = 50;
  for (int attempt = 0;; ++attempt) {
    int rc;
    if (fault_fires()) {
      rc = -1;
    } else {
#if defined(__APPLE__)
      rc = ::fsync(fd_);
#else
      rc = ::fdatasync(fd_);
#endif
    }
    if (rc == 0) return;
    const int err = errno;
    if (!transient_errno(err) || attempt + 1 >= kMaxAttempts)
      throw std::runtime_error("wal: fsync failed on '" + path_ +
                               "': " + std::strerror(err));
    ++retries_;
    if (err != EINTR) {
      const std::int64_t ms =
          std::min<std::int64_t>(std::int64_t{1} << attempt, kMaxBackoffMs);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
}

// ------------------------------------------------------------------ readers

WalReadResult read_wal(const std::string& path) {
  WalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // absent file == empty log

  RecordBuf buf;
  std::uint64_t expect_seq = 0;
  bool have_seq = false;
  bool first = true;
  for (;;) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    const auto got = in.gcount();
    if (got == 0 && in.eof()) break;  // clean end
    if (got != static_cast<std::streamsize>(kWalRecordBytes)) {
      result.torn_tail = true;  // short read: crash mid-append
      break;
    }
    if (first) {
      first = false;
      if (get_u64(buf.data()) == kWalMagic) {
        // v2 identity header. A corrupt header poisons the whole file — the
        // fingerprint can no longer be trusted, so nothing after it can.
        const std::uint32_t version = get_u32(buf.data() + 8);
        const std::uint32_t fp = get_u32(buf.data() + 12);
        if (get_u64(buf.data() + 24) != header_checksum(version, fp)) {
          result.torn_tail = true;
          break;
        }
        result.has_header = true;
        result.fingerprint = fp;
        result.valid_bytes += kWalHeaderBytes;
        continue;
      }
      // No magic: a headerless record stream — fall through and parse this
      // block as record 0.
    }
    WalRecord rec;
    rec.seq = get_u64(buf.data());
    const std::uint32_t op = get_u32(buf.data() + 8);
    rec.upd.op = static_cast<graph::UpdateOp>(op);
    rec.upd.u = get_u32(buf.data() + 12);
    rec.upd.v = get_u32(buf.data() + 16);
    rec.upd.label = get_u32(buf.data() + 20);
    const std::uint64_t stored = get_u64(buf.data() + 24);
    if (op > static_cast<std::uint32_t>(graph::UpdateOp::kRemoveVertex) ||
        stored != wal_checksum(rec.seq, rec.upd) ||
        (have_seq && rec.seq != expect_seq)) {
      result.torn_tail = true;  // bit rot or a torn rewrite
      break;
    }
    have_seq = true;
    expect_seq = rec.seq + 1;
    result.records.push_back(rec);
    result.valid_bytes += kWalRecordBytes;
  }
  return result;
}

void truncate_wal(const std::string& path, std::uint64_t valid_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec)
    throw std::runtime_error("wal: cannot truncate '" + path +
                             "': " + ec.message());
}

void write_snapshot(const std::string& path, const graph::DataGraph& g,
                    const SnapshotMeta& meta) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("snapshot: cannot open '" + tmp + "'");
    out << "# paracosm-snapshot 1 seq=" << meta.seq << " ads=" << std::hex
        << meta.ads_checksum << std::dec << " alg=" << meta.algorithm << "\n";
    graph::save_data_graph(g, out);
    out.flush();
    if (!out)
      throw std::runtime_error("snapshot: write failed on '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("snapshot: rename to '" + path +
                             "' failed: " + ec.message());
}

std::optional<Snapshot> read_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::string header;
  if (!std::getline(in, header)) return std::nullopt;
  std::istringstream hs(header);
  std::string hash, tag;
  int version = 0;
  hs >> hash >> tag >> version;
  if (hash != "#" || tag != "paracosm-snapshot" || version != 1)
    return std::nullopt;

  Snapshot snap;
  bool have_seq = false, have_ads = false;
  std::string field;
  while (hs >> field) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    try {
      if (key == "seq") {
        snap.meta.seq = std::stoull(value);
        have_seq = true;
      } else if (key == "ads") {
        snap.meta.ads_checksum = std::stoull(value, nullptr, 16);
        have_ads = true;
      } else if (key == "alg") {
        snap.meta.algorithm = value;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (!have_seq || !have_ads) return std::nullopt;

  try {
    snap.graph = graph::load_data_graph(in);
  } catch (const graph::ParseException&) {
    return std::nullopt;  // truncated/corrupt body: fall back to base + WAL
  }
  return snap;
}

RecoveredState recover_state(const graph::DataGraph& base,
                             const std::string& wal_path,
                             const std::string& snapshot_path,
                             std::uint32_t expected_fingerprint) {
  RecoveredState state;
  std::uint64_t replay_from = 0;

  WalReadResult wal = read_wal(wal_path);
  if (wal.has_header && wal.fingerprint != 0) {
    const std::uint32_t expect =
        expected_fingerprint != 0 ? expected_fingerprint : graph_fingerprint(base);
    if (wal.fingerprint != expect) {
      std::ostringstream msg;
      msg << "wal: graph fingerprint mismatch on '" << wal_path
          << "' — the log records fingerprint 0x" << std::hex << wal.fingerprint
          << " but the recovery base has 0x" << expect
          << ": this WAL belongs to a different graph";
      throw std::runtime_error(msg.str());
    }
  }

  if (!snapshot_path.empty()) {
    if (auto snap = read_snapshot(snapshot_path)) {
      state.graph = std::move(snap->graph);
      state.snapshot = snap->meta;
      state.used_snapshot = true;
      replay_from = snap->meta.seq;
    }
  }
  if (!state.used_snapshot) state.graph = base;

  // A snapshot "current through seq S" implies the WAL holds every record
  // below S (records are durable before they are applied, and the WAL is only
  // ever truncated at a torn tail). A snapshot ahead of the WAL tail means
  // records were lost — the state between tail and snapshot could be anything.
  const std::uint64_t wal_end =
      wal.records.empty() ? 0 : wal.records.back().seq + 1;
  if (state.used_snapshot && replay_from > wal_end) {
    std::ostringstream msg;
    msg << "recovery: snapshot '" << snapshot_path << "' is current through seq "
        << replay_from << " but the WAL '" << wal_path << "' ends at seq "
        << wal_end << " — " << (replay_from - wal_end)
        << " record(s) are missing; refusing to recover from disagreeing "
           "durability state";
    throw std::runtime_error(msg.str());
  }

  if (wal.torn_tail) {
    truncate_wal(wal_path, wal.valid_bytes);
    state.torn_tail_truncated = true;
  }
  state.next_seq = replay_from;
  for (const WalRecord& rec : wal.records) {
    state.next_seq = rec.seq + 1;
    if (rec.seq < replay_from) continue;  // already inside the snapshot
    // Idempotent redo: a record whose effect survived the crash (append
    // happened, apply happened, then crash) replays as a no-op.
    state.graph.apply(rec.upd);
    ++state.replayed;
  }
  return state;
}

}  // namespace paracosm::service
