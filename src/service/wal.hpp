// Durability for the service layer (DESIGN.md §7.3): an append-only
// write-ahead log of admitted updates, periodic full snapshots, and crash
// recovery that replays the WAL suffix on top of the newest snapshot.
//
// WAL format — fixed 32-byte little-endian records:
//
//   u64 seq | u32 op | u32 u | u32 v | u32 label | u64 checksum
//
// The checksum is FNV-1a (util/checksum.hpp) over the five preceding fields,
// so a torn tail — the partial or corrupted last record a crash mid-append
// leaves behind — is detected by a short read, a checksum mismatch, or a
// non-monotonic sequence number. Recovery truncates the file back to the last
// good record; everything before it is trusted.
//
// Records are appended *before* the update is applied (redo semantics): a
// crash between append and apply replays that update on recovery, and replay
// is idempotent because DataGraph::apply treats an already-applied update as
// a no-op.
//
// Snapshot format — a text file readable by graph_io with one header line:
//
//   # paracosm-snapshot 1 seq=<next_seq> ads=<hex> alg=<name>
//
// `seq` is the WAL sequence the snapshot is current through (the first record
// that still needs replay); `ads` is the algorithm's ADS checksum at that
// point, cross-checked after recovery by a fresh attach. Snapshots are
// written to a temp file and renamed into place, so a crash mid-snapshot
// never destroys the previous one.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/types.hpp"

namespace paracosm::service {

inline constexpr std::size_t kWalRecordBytes = 32;

struct WalRecord {
  std::uint64_t seq = 0;
  graph::GraphUpdate upd;
};

/// FNV-1a over (seq, op, u, v, label) — the first 24 bytes of the record.
[[nodiscard]] std::uint64_t wal_checksum(std::uint64_t seq,
                                         const graph::GraphUpdate& upd) noexcept;

/// Append-side handle. Not thread-safe: the service's single consumer is the
/// only writer (append-before-apply happens on the consumer thread).
class WalWriter {
 public:
  /// `truncate == true` starts a fresh log; otherwise appends to an existing
  /// one whose torn tail (if any) has already been cut by recover_state(),
  /// continuing at `next_seq`. Throws std::runtime_error if the file cannot
  /// be opened.
  WalWriter(const std::string& path, bool truncate, std::uint64_t next_seq = 0);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Append one record (buffered); returns the sequence number it received.
  std::uint64_t append(const graph::GraphUpdate& upd);

  /// Push buffered records to the OS. Called once per admitted update —
  /// the durability point the crash-recovery tests kill against.
  void flush();

  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t next_seq_ = 0;
};

struct WalReadResult {
  std::vector<WalRecord> records;  ///< every record up to the first bad one
  bool torn_tail = false;          ///< trailing bytes failed validation
  std::uint64_t valid_bytes = 0;   ///< file prefix covered by `records`
};

/// Scan a WAL file, validating length, checksum and seq monotonicity of each
/// record. Never throws on corrupt data — corruption is the expected input.
/// A missing file reads as empty.
[[nodiscard]] WalReadResult read_wal(const std::string& path);

/// Cut a torn tail: shrink `path` to `valid_bytes` (from read_wal).
void truncate_wal(const std::string& path, std::uint64_t valid_bytes);

struct SnapshotMeta {
  std::uint64_t seq = 0;           ///< WAL seq the snapshot is current through
  std::uint64_t ads_checksum = 0;  ///< algorithm ADS checksum at that point
  std::string algorithm;           ///< algorithm the checksum belongs to
};

struct Snapshot {
  SnapshotMeta meta;
  graph::DataGraph graph;
};

/// Atomically (write-temp + rename) persist the graph with its metadata.
void write_snapshot(const std::string& path, const graph::DataGraph& g,
                    const SnapshotMeta& meta);

/// Load a snapshot; nullopt if the file is absent or its header/body is
/// malformed (recovery then falls back to the initial graph + full WAL).
[[nodiscard]] std::optional<Snapshot> read_snapshot(const std::string& path);

struct RecoveredState {
  graph::DataGraph graph;        ///< post-replay graph
  std::uint64_t next_seq = 0;    ///< seq the resumed WAL should continue at
  std::uint64_t replayed = 0;    ///< WAL records re-applied
  bool torn_tail_truncated = false;
  bool used_snapshot = false;
  std::optional<SnapshotMeta> snapshot;  ///< header of the snapshot used
};

/// Crash recovery: start from the newest snapshot (when `snapshot_path` is
/// non-empty and readable), else from `base` — the initial graph the service
/// was started with — and replay every WAL record with seq >= the base's
/// sequence. A torn WAL tail is truncated in place so a resumed WalWriter
/// can append cleanly. The ADS is NOT recovered from disk: callers re-attach
/// the algorithm to the recovered graph (the offline stage), then verify the
/// snapshot's stored `ads_checksum` against a fresh attach on the snapshot
/// graph when they want the cross-check.
[[nodiscard]] RecoveredState recover_state(const graph::DataGraph& base,
                                           const std::string& wal_path,
                                           const std::string& snapshot_path = {});

}  // namespace paracosm::service
