// Durability for the service layer (DESIGN.md §7.3): an append-only
// write-ahead log of admitted updates, periodic full snapshots, and crash
// recovery that replays the WAL suffix on top of the newest snapshot.
//
// WAL format — one optional 32-byte file header followed by fixed 32-byte
// little-endian records:
//
//   header:  u64 magic "PCOSMWAL" | u32 version | u32 graph_fp | u64 0 | u64 checksum
//   record:  u64 seq | u32 op | u32 u | u32 v | u32 label | u64 checksum
//
// The checksums are FNV-1a (util/checksum.hpp) over the preceding fields, so
// a torn tail — the partial or corrupted last record a crash mid-append
// leaves behind — is detected by a short read, a checksum mismatch, or a
// non-monotonic sequence number. Recovery truncates the file back to the last
// good record; everything before it is trusted. The header's `graph_fp` is an
// *identity* check (fingerprint of the graph the log was started from, plus
// any caller salt): replaying a WAL onto the wrong base graph is rejected
// with a clear error instead of silently corrupting state. Headerless files
// (pre-header logs, tests that build raw record streams) read fine; identity
// is simply unchecked for them.
//
// Records are appended *before* the update is applied (redo semantics): a
// crash between append and apply replays that update on recovery, and replay
// is idempotent because DataGraph::apply treats an already-applied update as
// a no-op. The writer sits on a raw POSIX fd so the durability point is a
// real fdatasync, and transient append/sync failures (EINTR, EAGAIN, an
// ENOSPC that clears) are retried with capped backoff instead of failing the
// admitted update outright — every retry is counted (ServiceStats::
// wal_retries) so flaky storage shows up in the metrics, not in lost updates.
//
// Snapshot format — a text file readable by graph_io with one header line:
//
//   # paracosm-snapshot 1 seq=<next_seq> ads=<hex> alg=<name>
//
// `seq` is the WAL sequence the snapshot is current through (the first record
// that still needs replay); `ads` is the algorithm's ADS checksum at that
// point, cross-checked after recovery by a fresh attach. Snapshots are
// written to a temp file and renamed into place, so a crash mid-snapshot
// never destroys the previous one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/types.hpp"

namespace paracosm::service {

inline constexpr std::size_t kWalRecordBytes = 32;
inline constexpr std::size_t kWalHeaderBytes = 32;
inline constexpr std::uint64_t kWalMagic = 0x4c41574d534f4350ULL;  // "PCOSMWAL"
inline constexpr std::uint32_t kWalVersion = 2;

struct WalRecord {
  std::uint64_t seq = 0;
  graph::GraphUpdate upd;
};

/// FNV-1a over (seq, op, u, v, label) — the first 24 bytes of the record.
[[nodiscard]] std::uint64_t wal_checksum(std::uint64_t seq,
                                         const graph::GraphUpdate& upd) noexcept;

/// Identity fingerprint of a graph: FNV-1a over the alive (id, label) pairs
/// plus vertex/edge counts. Cheap (O(V)), order-stable, and computed at WAL
/// creation so recovery can refuse a log that belongs to a different graph.
/// This is an identity check, not an integrity check — two graphs that differ
/// anywhere in their vertex sets get different fingerprints with 2^-32 odds.
[[nodiscard]] std::uint32_t graph_fingerprint(const graph::DataGraph& g) noexcept;

/// Append-side handle. Not thread-safe: the service's single consumer is the
/// only writer (append-before-apply happens on the consumer thread).
class WalWriter {
 public:
  /// `truncate == true` starts a fresh log (header carrying `fingerprint`,
  /// 0 = identity unchecked); otherwise appends to an existing one whose torn
  /// tail (if any) has already been cut by recover_state(), continuing at
  /// `next_seq`. Throws std::runtime_error if the file cannot be opened.
  WalWriter(const std::string& path, bool truncate, std::uint64_t next_seq = 0,
            std::uint32_t fingerprint = 0);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Append one record; returns the sequence number it received. Transient
  /// write failures are retried with capped backoff (see file comment);
  /// a persistent failure throws std::runtime_error.
  std::uint64_t append(const graph::GraphUpdate& upd);

  /// Make appended records durable (fdatasync) — the durability point the
  /// crash-recovery tests kill against. Retries transient failures.
  void flush();

  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Transient write/sync failures absorbed by the retry loop so far.
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

  /// Test hook: fail the next `n` write/fdatasync syscalls with errno `err`
  /// before letting them through, exercising the retry path deterministically.
  void inject_transient_failures(int n, int err) noexcept {
    fault_remaining_ = n;
    fault_errno_ = err;
  }

 private:
  void write_all(const unsigned char* data, std::size_t len);
  [[nodiscard]] bool fault_fires() noexcept;

  std::string path_;
  int fd_ = -1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t retries_ = 0;
  int fault_remaining_ = 0;
  int fault_errno_ = 0;
};

struct WalReadResult {
  std::vector<WalRecord> records;  ///< every record up to the first bad one
  bool torn_tail = false;          ///< trailing bytes failed validation
  std::uint64_t valid_bytes = 0;   ///< file prefix covered by header+records
  bool has_header = false;         ///< file carries a v2 identity header
  std::uint32_t fingerprint = 0;   ///< header graph fingerprint (0 = none)
};

/// Scan a WAL file, validating length, checksum and seq monotonicity of each
/// record. Never throws on corrupt data — corruption is the expected input.
/// A missing file reads as empty.
[[nodiscard]] WalReadResult read_wal(const std::string& path);

/// Cut a torn tail: shrink `path` to `valid_bytes` (from read_wal).
void truncate_wal(const std::string& path, std::uint64_t valid_bytes);

struct SnapshotMeta {
  std::uint64_t seq = 0;           ///< WAL seq the snapshot is current through
  std::uint64_t ads_checksum = 0;  ///< algorithm ADS checksum at that point
  std::string algorithm;           ///< algorithm the checksum belongs to
};

struct Snapshot {
  SnapshotMeta meta;
  graph::DataGraph graph;
};

/// Atomically (write-temp + rename) persist the graph with its metadata.
void write_snapshot(const std::string& path, const graph::DataGraph& g,
                    const SnapshotMeta& meta);

/// Load a snapshot; nullopt if the file is absent or its header/body is
/// malformed (recovery then falls back to the initial graph + full WAL).
[[nodiscard]] std::optional<Snapshot> read_snapshot(const std::string& path);

struct RecoveredState {
  graph::DataGraph graph;        ///< post-replay graph
  std::uint64_t next_seq = 0;    ///< seq the resumed WAL should continue at
  std::uint64_t replayed = 0;    ///< WAL records re-applied
  bool torn_tail_truncated = false;
  bool used_snapshot = false;
  std::optional<SnapshotMeta> snapshot;  ///< header of the snapshot used
};

/// Crash recovery: start from the newest snapshot (when `snapshot_path` is
/// non-empty and readable), else from `base` — the initial graph the service
/// was started with — and replay every WAL record with seq >= the base's
/// sequence. A torn WAL tail is truncated in place so a resumed WalWriter
/// can append cleanly. The ADS is NOT recovered from disk: callers re-attach
/// the algorithm to the recovered graph (the offline stage), then verify the
/// snapshot's stored `ads_checksum` against a fresh attach on the snapshot
/// graph when they want the cross-check.
///
/// Two disagreement classes are *rejected* (std::runtime_error) instead of
/// silently producing a wrong graph:
///   * identity — the WAL header's graph fingerprint does not match
///     `expected_fingerprint` (default: fingerprint(base)): this WAL belongs
///     to a different graph/stream.
///   * snapshot ahead of the WAL tail — the snapshot claims to be current
///     through a seq the WAL never reached: records were lost, the suffix
///     between them is unrecoverable.
/// Replaying a WAL suffix that duplicates snapshot state is NOT an error —
/// redo replay is idempotent by design.
[[nodiscard]] RecoveredState recover_state(const graph::DataGraph& base,
                                           const std::string& wal_path,
                                           const std::string& snapshot_path = {},
                                           std::uint32_t expected_fingerprint = 0);

}  // namespace paracosm::service
