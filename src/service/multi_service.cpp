#include "service/multi_service.hpp"

#include <chrono>

namespace paracosm::service {

using graph::GraphUpdate;

MultiStreamService::MultiStreamService(engine::MultiQueryEngine& engine,
                                       MultiServiceOptions opts)
    : engine_(engine),
      opts_(std::move(opts)),
      queue_(opts_.queue_capacity, opts_.policy) {
  if (!opts_.wal_path.empty())
    wal_.emplace(opts_.wal_path, /*truncate=*/true);
  positive_.assign(engine_.num_slots(), 0);
  negative_.assign(engine_.num_slots(), 0);
  degraded_.assign(engine_.num_slots(), 0);
  consumer_ = std::thread([this] { consumer_loop(); });
}

MultiStreamService::~MultiStreamService() {
  if (!finished_) (void)finish();
}

PushResult MultiStreamService::submit(const GraphUpdate& upd) {
  const PushResult r = queue_.push(upd);
  if (r == PushResult::kShed) {
    std::lock_guard lk(defer_m_);
    defer_log_.push_back(upd);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    return r;
  }
  if (r != PushResult::kClosed)
    submitted_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

template <typename F>
auto MultiStreamService::run_on_consumer(F&& fn) -> decltype(fn()) {
  using R = decltype(fn());
  if constexpr (std::is_void_v<R>) {
    AdminOp op;
    op.fn = [&fn] { fn(); };
    {
      std::lock_guard lk(admin_m_);
      admin_queue_.push_back(&op);
    }
    std::unique_lock lk(admin_m_);
    admin_cv_.wait(lk, [&op] { return op.done; });
    if (op.error) std::rethrow_exception(op.error);
  } else {
    std::optional<R> result;
    AdminOp op;
    op.fn = [&fn, &result] { result.emplace(fn()); };
    {
      std::lock_guard lk(admin_m_);
      admin_queue_.push_back(&op);
    }
    std::unique_lock lk(admin_m_);
    admin_cv_.wait(lk, [&op] { return op.done; });
    if (op.error) std::rethrow_exception(op.error);
    return std::move(*result);
  }
}

std::size_t MultiStreamService::add_query(std::string algorithm,
                                          graph::QueryGraph query,
                                          engine::QueryOptions qopts) {
  return run_on_consumer([&] {
    const std::size_t handle =
        engine_.add_query(algorithm, std::move(query), qopts);
    if (handle >= positive_.size()) {
      positive_.resize(handle + 1, 0);
      negative_.resize(handle + 1, 0);
      degraded_.resize(handle + 1, 0);
    }
    return handle;
  });
}

bool MultiStreamService::remove_query(const std::size_t handle) {
  return run_on_consumer([&] { return engine_.remove_query(handle); });
}

void MultiStreamService::drain() {
  const std::uint64_t target = submitted_.load(std::memory_order_acquire);
  std::unique_lock lk(drain_m_);
  drain_cv_.wait(lk, [&] {
    return processed_.load(std::memory_order_acquire) >= target;
  });
  // Also flush any admin ops already enqueued at call time.
  run_on_consumer([] {});
}

void MultiStreamService::run_admin() {
  for (;;) {
    AdminOp* op = nullptr;
    {
      std::lock_guard lk(admin_m_);
      if (admin_queue_.empty()) return;
      op = admin_queue_.front();
      admin_queue_.pop_front();
    }
    try {
      op->fn();
    } catch (...) {
      op->error = std::current_exception();
    }
    {
      std::lock_guard lk(admin_m_);
      op->done = true;
    }
    admin_cv_.notify_all();
  }
}

bool MultiStreamService::pop_deferred(GraphUpdate& out) {
  std::lock_guard lk(defer_m_);
  if (defer_log_.empty()) return false;
  out = defer_log_.front();
  defer_log_.pop_front();
  ++stats_.deferred_retries;
  return true;
}

void MultiStreamService::process_one(const GraphUpdate& upd) {
  util::WallTimer timer;
  if (wal_) {
    wal_->append(upd);
    wal_->flush();
    ++stats_.wal_records;
  }
  util::Clock::time_point deadline{};
  if (opts_.budget_us > 0)
    deadline = util::Clock::now() + std::chrono::microseconds(opts_.budget_us);
  const engine::MultiStreamResult r =
      engine_.process_stream(std::span<const GraphUpdate>(&upd, 1), deadline);
  for (std::size_t q = 0; q < r.positive.size() && q < positive_.size(); ++q) {
    positive_[q] += r.positive[q];
    negative_[q] += r.negative[q];
    degraded_[q] += r.degraded[q];
  }
  mq_.merge(r.mq);
  exec_.merge(r.stats);
  if (r.timed_out) ++deadline_hits_;
  if (r.updates_processed == 0) ++stats_.noop_skipped;
  ++stats_.processed;
  latency_hist_.record(timer.elapsed_ns());
  processed_.fetch_add(1, std::memory_order_release);
  drain_cv_.notify_all();
}

void MultiStreamService::consumer_loop() {
  IngestItem item;
  std::uint64_t idle_spins = 0;
  for (;;) {
    run_admin();
    bool did = false;
    try {
      if (queue_.try_pop(item)) {
        process_one(item.upd);
        did = true;
      } else {
        // Ring momentarily empty: replay one deferred (shed) update — shed
        // means delayed, never dropped.
        GraphUpdate deferred;
        if (pop_deferred(deferred)) {
          process_one(deferred);
          did = true;
        }
      }
    } catch (const std::exception& e) {
      if (error_.empty()) error_ = e.what();
      processed_.fetch_add(1, std::memory_order_release);
      drain_cv_.notify_all();
    }
    if (did) {
      idle_spins = 0;
      continue;
    }
    if (queue_.closed()) {
      // Closed and fully drained (ring + defer log) — but only exit once
      // pending admin ops have run too.
      std::lock_guard lk(admin_m_);
      if (admin_queue_.empty()) break;
      continue;
    }
    // Idle backoff: spin briefly, then nap. The admin plane stays responsive
    // (bounded by the nap) without burning a core on an idle stream.
    if (++idle_spins < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

MultiServiceReport MultiStreamService::finish() {
  MultiServiceReport report;
  if (finished_) {
    report.error = "finish() called twice";
    return report;
  }
  finished_ = true;
  queue_.close();
  if (consumer_.joinable()) consumer_.join();
  report.stats = stats_;
  report.stats.ingest = queue_.stats();
  report.mq = mq_;
  report.exec = exec_;
  report.positive = positive_;
  report.negative = negative_;
  report.degraded = degraded_;
  report.deadline_hits = deadline_hits_;
  report.wall_ns = wall_.elapsed_ns();
  report.latency = latency_hist_;
  report.error = error_;
  return report;
}

}  // namespace paracosm::service
