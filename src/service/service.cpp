#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"

namespace paracosm::service {

// ---------------------------------------------------------------- Watchdog

namespace {

[[nodiscard]] std::int64_t steady_ns(util::Clock::time_point tp) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

void nap(std::int64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

}  // namespace

Watchdog::Watchdog() : thread_([this] { run(); }) {}

Watchdog::~Watchdog() {
  stop_.store(true, std::memory_order_release);
  thread_.join();  // the poller re-checks stop_ at least every kMaxPollNs
}

void Watchdog::arm(util::CancelToken* token, std::uint64_t epoch,
                   util::Clock::time_point deadline) {
  // Publish order matters (see the class comment): the epoch store is the
  // release gate, so a poller that reads this epoch sees this (or a later,
  // farther-out) deadline — never an older one.
  token_.store(token, std::memory_order_relaxed);
  deadline_ns_.store(steady_ns(deadline), std::memory_order_relaxed);
  epoch_.store(epoch, std::memory_order_release);
}

void Watchdog::disarm(std::uint64_t epoch) {
  // A single relaxed store: if the poller still acts on the old epoch it
  // cancels a scope that already finished — a no-op under epoch semantics.
  if (epoch_.load(std::memory_order_relaxed) == epoch)
    epoch_.store(0, std::memory_order_relaxed);
}

void Watchdog::run() {
  PARACOSM_TRACE_THREAD_NAME("watchdog");
  std::uint64_t last_fired_epoch = ~std::uint64_t{0};
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    // Epoch first (acquire) — the ordering anchor for the torn-read argument.
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (epoch == 0) {  // disarmed
      nap(kMaxPollNs);
      continue;
    }
    const std::int64_t deadline_ns = deadline_ns_.load(std::memory_order_relaxed);
    const std::int64_t now = steady_ns(util::Clock::now());
    if (now < deadline_ns) {
      // Quarter-remaining naps: a far deadline is sampled rarely (one wake
      // per kMaxPollNs), a near one at kMinPollNs precision.
      nap(std::clamp((deadline_ns - now) / 4, kMinPollNs, kMaxPollNs));
      continue;
    }
    // Overdue. Fire once per epoch; the consumer will disarm or re-arm.
    if (epoch != last_fired_epoch) {
      token_.load(std::memory_order_relaxed)->cancel(epoch);
      PARACOSM_TRACE_INSTANT(obs::EventKind::kWatchdogFire, epoch);
      cancels_.fetch_add(1, std::memory_order_relaxed);
      last_fired_epoch = epoch;
    }
    nap(kMinPollNs);
  }
}

// ------------------------------------------------------------ StreamService

StreamService::StreamService(engine::ParaCosm& engine, ServiceOptions opts,
                             FaultHooks hooks)
    : engine_(engine),
      opts_(std::move(opts)),
      hooks_(std::move(hooks)),
      queue_(opts_.queue_capacity, opts_.policy),
      budget_ns_(opts_.budget_us * 1000) {
  if (!opts_.wal_path.empty()) {
    wal_.emplace(opts_.wal_path, /*truncate=*/!opts_.wal_resume,
                 opts_.wal_resume ? opts_.wal_next_seq : 0,
                 opts_.wal_fingerprint);
    seq_ = wal_->next_seq();
  }
  if (budget_ns_ > 0) watchdog_.emplace();
  if (opts_.adaptive && opts_.control_every > 0) {
    control::AdmissionOptions aopts;
    aopts.p99_target_ns = opts_.p99_target_us * 1000;
    admission_.emplace(static_cast<std::uint32_t>(queue_.capacity()), aopts);
    queue_.set_degrade_watermark(admission_->watermark());
  }
  // The engine-side observer is installed once; `deliver_` (consumer-thread
  // only) gates it off for updates degraded to count-only.
  engine_.set_match_callback([this](std::span<const csm::Assignment> m) {
    if (deliver_ && on_match_) on_match_(m);
  });
  consumer_ = std::thread([this] { consumer_loop(); });
  // Report wall time from "ready to serve": thread spawns above are one-time
  // setup, not serving cost (they would otherwise dominate short benches).
  wall_.reset();
}

StreamService::~StreamService() {
  queue_.close();
  if (consumer_.joinable()) consumer_.join();
}

PushResult StreamService::submit(const graph::GraphUpdate& upd) {
  const PushResult r = queue_.push(upd);
  if (r == PushResult::kShed) {
    std::lock_guard<std::mutex> lk(defer_m_);
    defer_log_.push_back(upd);
  }
  return r;
}

bool StreamService::pop_deferred(graph::GraphUpdate& out) {
  std::lock_guard<std::mutex> lk(defer_m_);
  if (defer_log_.empty()) return false;
  out = defer_log_.front();
  defer_log_.pop_front();
  return true;
}

void StreamService::retry_deferred() {
  {
    std::lock_guard<std::mutex> lk(defer_m_);
    if (defer_log_.empty()) return;
  }
  if (defer_countdown_ > 0) {
    --defer_countdown_;
    return;
  }
  // Only replay once the ring has visibly drained below half capacity —
  // otherwise the replay itself would keep the overload alive. While the
  // pressure persists, probe with exponential backoff.
  if (queue_.approx_size() * 2 >= queue_.capacity()) {
    defer_backoff_ = std::min<std::uint64_t>(defer_backoff_ * 2, 64);
    defer_countdown_ = defer_backoff_;
    return;
  }
  defer_backoff_ = 1;
  graph::GraphUpdate upd;
  if (pop_deferred(upd)) process_one(upd, /*degraded=*/false, /*deferred=*/true);
}

void StreamService::consumer_loop() {
  PARACOSM_TRACE_THREAD_NAME("service");
  try {
    IngestItem item;
    while (queue_.pop_wait(item)) {
      if (hooks_.slow_consumer) hooks_.slow_consumer();
      process_one(item.upd, item.degraded, /*deferred=*/false);
      retry_deferred();
    }
    // Shutdown drain: shed updates are delayed, never dropped.
    graph::GraphUpdate upd;
    while (pop_deferred(upd))
      process_one(upd, /*degraded=*/false, /*deferred=*/true);
  } catch (const std::exception& e) {
    error_ = e.what();
    queue_.close();  // stop admitting; producers see kClosed
  }
}

void StreamService::process_one(const graph::GraphUpdate& upd, bool degraded,
                                bool deferred) {
  util::WallTimer timer;
  // seq_ at entry is exactly the sequence this update gets (the constructor
  // seeds it from the WAL and the tail of this function keeps it in sync).
  PARACOSM_TRACE_SPAN(service_span, obs::EventKind::kServiceUpdate, seq_,
                      static_cast<std::uint64_t>(upd.op));

  // Durability point: the record is on disk before the engine sees the
  // update. A crash in the window right after (after_wal_append) is exactly
  // what recover_state's redo replay covers.
  std::uint64_t seq = seq_;
  if (wal_) {
    {
      PARACOSM_TRACE_SPAN(append_span, obs::EventKind::kWalAppend, seq_);
      seq = wal_->append(upd);
    }
    {
      PARACOSM_TRACE_SPAN(fsync_span, obs::EventKind::kWalFsync);
      wal_->flush();
    }
    ++stats_.wal_records;
    stats_.wal_retries = wal_->retries();
    if (hooks_.after_wal_append) hooks_.after_wal_append(seq);
  }
  seq_ = seq + 1;

  util::CancelView view{};
  bool armed_watchdog = false;
  std::uint64_t epoch = 0;
  const bool forced = hooks_.force_timeout && hooks_.force_timeout(seq);
  if (forced || budget_ns_ > 0) {
    // The consumer is the token's only armer, so epochs come from a plain
    // counter instead of CancelToken::arm()'s atomic RMW — monotonicity is
    // all cancel()/is_cancelled() need, and this runs once per update.
    epoch = ++arm_epoch_;
    view = util::CancelView{&token_, epoch};
    if (forced) {
      // Deterministic over-budget outcome: the fresh epoch is cancelled up
      // front, so the search aborts at its first cancellation check.
      token_.cancel(epoch);
    } else {
      // Deadline base = the latency timer's stamp from function entry: one
      // clock read per update, shared with accounting. The budget therefore
      // covers the update end-to-end (WAL flush + search), which is what a
      // latency SLO means anyway.
      watchdog_->arm(&token_, epoch,
                     timer.start() + std::chrono::nanoseconds(budget_ns_));
      armed_watchdog = true;
    }
  }

  deliver_ = !degraded;
  const csm::UpdateOutcome out = engine_.process(upd, {}, view);
  deliver_ = true;
  if (armed_watchdog) watchdog_->disarm(epoch);

  ++stats_.processed;
  if (deferred) ++stats_.deferred_retries;
  if (out.cancelled) ++stats_.degraded_searches;
  if (!out.applied) ++stats_.noop_skipped;
  positive_ += out.positive;
  negative_ += out.negative;
  const std::int64_t latency_ns = timer.elapsed_ns();
  latency_hist_.record(latency_ns);
  if (admission_) window_hist_.record(latency_ns);
  if (opts_.record_applied_order) applied_order_.push_back(upd);

  maybe_control_tick();
  maybe_snapshot();
  maybe_flush_metrics();

  if (on_done_)
    on_done_(UpdateDone{seq, out.applied, out.cancelled || out.timed_out,
                        out.positive, out.negative});
}

void StreamService::maybe_control_tick() {
  if (!admission_) return;
  if (++since_control_ < opts_.control_every) return;
  since_control_ = 0;

  const engine::IngestStats is = queue_.stats();
  control::ServiceSample s;
  s.queue_depth = queue_.approx_size();
  s.queue_capacity = queue_.capacity();
  s.degraded = is.degraded - last_degraded_;
  s.shed = is.shed - last_shed_;
  s.p99_ns = window_hist_.count() > 0 ? window_hist_.quantile(99.0) : 0;
  s.target_ns = opts_.p99_target_us * 1000;
  last_degraded_ = is.degraded;
  last_shed_ = is.shed;
  window_hist_ = obs::Histogram{};

  const control::Decision d = admission_->step(s);
  if (d.changed) queue_.set_degrade_watermark(d.to);
}

void StreamService::maybe_snapshot() {
  if (opts_.snapshot_path.empty() || opts_.snapshot_every == 0) return;
  if (++since_snapshot_ < opts_.snapshot_every) return;
  since_snapshot_ = 0;
  SnapshotMeta meta;
  meta.seq = seq_;
  meta.ads_checksum = engine_.algorithm().ads_checksum();
  meta.algorithm = std::string(engine_.algorithm().name());
  write_snapshot(opts_.snapshot_path, engine_.graph(), meta);
  ++stats_.snapshots;
}

void StreamService::maybe_flush_metrics() {
  if (opts_.metrics_path.empty() || opts_.metrics_every == 0) return;
  if (++since_metrics_ < opts_.metrics_every) return;
  since_metrics_ = 0;
  flush_metrics();
}

void StreamService::flush_metrics() {
  PARACOSM_TRACE_SPAN(flush_span, obs::EventKind::kMetricsFlush,
                      stats_.processed);
  obs::MetricsSnapshot snap;
  snap.add_counter("service.processed",
                   static_cast<std::int64_t>(stats_.processed));
  snap.add_counter("service.degraded_searches",
                   static_cast<std::int64_t>(stats_.degraded_searches));
  snap.add_counter("service.deferred_retries",
                   static_cast<std::int64_t>(stats_.deferred_retries));
  snap.add_counter("service.noop_skipped",
                   static_cast<std::int64_t>(stats_.noop_skipped));
  snap.add_counter("service.wal_records",
                   static_cast<std::int64_t>(stats_.wal_records));
  snap.add_counter("service.wal_retries",
                   static_cast<std::int64_t>(stats_.wal_retries));
  snap.add_counter("service.snapshots",
                   static_cast<std::int64_t>(stats_.snapshots));
  snap.add_counter("service.watchdog_cancels",
                   static_cast<std::int64_t>(
                       watchdog_ ? watchdog_->cancels() : 0));
  snap.add_counter("service.positive", static_cast<std::int64_t>(positive_));
  snap.add_counter("service.negative", static_cast<std::int64_t>(negative_));
  snap.add_histogram("service.latency_ns", latency_hist_);
  snap.write(opts_.metrics_path);
  ++stats_.metrics_flushes;
}

ServiceReport StreamService::finish() {
  queue_.close();
  if (consumer_.joinable()) consumer_.join();

  ServiceReport r;
  if (!finished_) {
    finished_ = true;
    stats_.ingest = queue_.stats();
    if (watchdog_) stats_.watchdog_cancels = watchdog_->cancels();
    if (wal_) stats_.wal_retries = wal_->retries();
    // Graceful-shutdown snapshot: the drain is complete and the consumer has
    // joined, so this captures the true final state without racing anything.
    if (opts_.snapshot_on_finish && !opts_.snapshot_path.empty() &&
        error_.empty()) {
      SnapshotMeta meta;
      meta.seq = seq_;
      meta.ads_checksum = engine_.algorithm().ads_checksum();
      meta.algorithm = std::string(engine_.algorithm().name());
      write_snapshot(opts_.snapshot_path, engine_.graph(), meta);
      ++stats_.snapshots;
    }
    // Final snapshot (even when the stream was shorter than metrics_every),
    // so a metrics consumer always sees the end-of-run totals. The consumer
    // thread has joined, so writing from here cannot race a periodic flush.
    if (!opts_.metrics_path.empty()) flush_metrics();
    r.stats = stats_;
    r.positive = positive_;
    r.negative = negative_;
    r.wall_ns = wall_.elapsed_ns();
    r.latency = latency_hist_;
    r.applied_order = std::move(applied_order_);
    r.error = error_;
    if (admission_) {
      r.control = admission_->stats();
      r.control_decisions = admission_->decisions();
      r.degrade_watermark = queue_.degrade_watermark();
    }
  }
  return r;
}

}  // namespace paracosm::service
