// StreamService: the overload-resilient front door (DESIGN.md §7).
//
// Producers push updates into the bounded ingest ring (ingest.hpp); one
// consumer thread drains it and, per update, walks the durability + deadline
// pipeline:
//
//   pop → [slow-consumer fault] → WAL append + flush → [crash hook]
//       → arm CancelToken (+ watchdog when a budget is set)
//       → ParaCosm::process → disarm → account
//
// The WAL append happens *before* the engine applies the update (redo
// semantics, wal.hpp); the crash-recovery tests kill the process exactly in
// between. A per-update search budget is enforced by the Watchdog thread
// cancelling the update's armed epoch; the search stops at the next
// cancellation check, the update is recorded as *degraded* (its ΔM counts may
// be partial) and — crucially — graph/ADS maintenance still completed, so
// state stays consistent and later updates are exact.
//
// Overload behaviour is the ring's policy: kBlock backpressures the producer,
// kShed returns the update to the caller, which submit() parks in a defer
// log — the consumer replays deferred updates once queue depth drops below
// half capacity (checked with exponential backoff while pressure persists)
// and unconditionally drains the log at shutdown: shed updates are delayed,
// never dropped. kDegrade admits the update flagged count-only: per-mapping
// delivery is suppressed but ΔM counts and all state stay exact.
//
// Threading contract: any number of submit() callers; finish() must not race
// submit(); the match callback must be installed before the first submit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "control/control_plane.hpp"
#include "obs/histogram.hpp"
#include "paracosm/paracosm.hpp"
#include "service/fault.hpp"
#include "service/ingest.hpp"
#include "service/wal.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace paracosm::service {

/// Deadline enforcer: one thread, at most one armed scope at a time (the
/// service consumer processes one update at a time). arm() pins (token,
/// epoch, deadline); if disarm() does not arrive first, the watchdog cancels
/// exactly that epoch — a late cancel can never leak into the next update
/// (see util/cancel.hpp).
///
/// arm()/disarm() sit on the per-update hot path — at microsecond update
/// granularity even a futex wake per update is a double-digit-percent tax —
/// so both are plain atomic stores, no lock, no RMW, no notify. The armed
/// scope is published in a fixed order (token, then deadline, then epoch with
/// release; disarm stores epoch 0) and the watchdog polls it with naps sized
/// to a quarter of the time remaining, clamped to [kMinPollNs, kMaxPollNs].
///
/// Why torn reads are safe without a seqlock: epochs are monotonic and a
/// cancel aimed at a stale epoch is a no-op by CancelToken's contract. The
/// poller loads epoch with acquire FIRST — so the deadline it then reads was
/// stored no earlier than that epoch's, i.e. it is that scope's deadline or a
/// later (hence farther-out) one. Every interleaving therefore either cancels
/// the right overdue epoch, cancels a dead old epoch (benign), or waits a
/// little longer — it can never cancel a live scope early.
///
/// A generous never-firing budget costs one wake per kMaxPollNs; a genuinely
/// overdue deadline is cancelled within ~kMinPollNs. The thread never parks —
/// worst-case idle cost is a wake per kMaxPollNs, which also bounds how long
/// the destructor waits for join.
class Watchdog {
 public:
  Watchdog();
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void arm(util::CancelToken* token, std::uint64_t epoch,
           util::Clock::time_point deadline);
  void disarm(std::uint64_t epoch);

  [[nodiscard]] std::uint64_t cancels() const noexcept {
    return cancels_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::int64_t kMinPollNs = 50'000;     ///< deadline precision
  static constexpr std::int64_t kMaxPollNs = 5'000'000;  ///< idle / far-deadline

  void run();

  // Armed scope; epoch_ == 0 means disarmed (CancelToken epochs start at 1).
  std::atomic<util::CancelToken*> token_{nullptr};
  std::atomic<std::int64_t> deadline_ns_{0};
  std::atomic<std::uint64_t> epoch_{0};

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> cancels_{0};
  std::thread thread_;
};

struct ServiceOptions {
  std::size_t queue_capacity = 1024;
  OverloadPolicy policy = OverloadPolicy::kBlock;

  /// Per-update budget in microseconds, measured end-to-end from dequeue
  /// (WAL flush + search); 0 disables the watchdog.
  std::int64_t budget_us = 0;

  std::string wal_path;      ///< empty = durability off
  bool wal_resume = false;   ///< append (post-recovery) instead of truncating
  std::uint64_t wal_next_seq = 0;  ///< first seq when resuming

  /// Identity fingerprint stamped into a fresh WAL's header (wal.hpp); 0
  /// leaves identity unchecked. Shard workers pass graph_fingerprint(base)
  /// salted with the shard id so a shard can never replay a sibling's log.
  std::uint32_t wal_fingerprint = 0;

  std::string snapshot_path;       ///< empty = snapshots off
  std::uint64_t snapshot_every = 0;  ///< updates between snapshots; 0 = never
  /// Write one final snapshot during finish() (after the drain) even when
  /// snapshot_every never triggered — the graceful-shutdown path.
  bool snapshot_on_finish = false;

  /// Capture the effective processing order (shed updates are replayed late,
  /// out of submission order) — the stream the verification oracle replays.
  bool record_applied_order = false;

  /// Periodic metrics flushing (obs/metrics.hpp): every `metrics_every`
  /// processed updates the consumer writes a flat counter + latency-histogram
  /// snapshot to `metrics_path` (format by extension: .csv or JSON; atomic
  /// tmp+rename). A final snapshot is always written at finish(). Empty path
  /// or 0 disables.
  std::string metrics_path;
  std::uint64_t metrics_every = 0;

  /// Adaptive admission control (DESIGN.md §13): an AdmissionController over
  /// the ingest degrade watermark, stepped every `control_every` processed
  /// updates against that window's p99 latency and the live queue depth.
  /// Only changes observable behaviour under OverloadPolicy::kDegrade (the
  /// watermark is a degrade threshold); ΔM counts stay exact regardless.
  bool adaptive = false;
  std::int64_t p99_target_us = 5000;  ///< latency target fed to the controller
  std::uint64_t control_every = 64;   ///< updates per control window
};

struct ServiceReport {
  engine::ServiceStats stats;
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  std::int64_t wall_ns = 0;
  /// Per-update end-to-end latency distribution (WAL flush + search). The
  /// log-bucketed histogram replaces the old raw sample vector: constant
  /// memory at any stream length, exact count/mean/max, quantiles within the
  /// documented 1/32 relative-error bound (obs/histogram.hpp).
  obs::Histogram latency;
  std::vector<graph::GraphUpdate> applied_order;  ///< see record_applied_order
  std::string error;  ///< non-empty if the consumer died (e.g. WAL I/O)

  /// Adaptive-admission outcome (ServiceOptions::adaptive): controller
  /// counters, its decision log, and the final degrade watermark.
  control::ControlStats control;
  std::vector<control::DecisionRecord> control_decisions;
  std::uint64_t degrade_watermark = 0;
};

/// Completion summary of one processed update, delivered on the consumer
/// thread right after the engine returns (before the next pop). The shard
/// worker turns this into the per-update acknowledgement frame.
struct UpdateDone {
  std::uint64_t seq = 0;   ///< WAL sequence (or the stand-in counter)
  bool applied = false;    ///< the graph mutation took effect
  bool cancelled = false;  ///< search cut short (watchdog / forced timeout)
  std::uint64_t positive = 0;  ///< ΔM+ of this update
  std::uint64_t negative = 0;  ///< ΔM- of this update
};

class StreamService {
 public:
  /// The engine must already be attached (offline stage done). The consumer
  /// thread starts immediately.
  StreamService(engine::ParaCosm& engine, ServiceOptions opts,
                FaultHooks hooks = {});
  ~StreamService();

  StreamService(const StreamService&) = delete;
  StreamService& operator=(const StreamService&) = delete;

  /// Producer side. kShed means the update went to the defer log (it will
  /// still be processed, later); kClosed means finish() already ran.
  PushResult submit(const graph::GraphUpdate& upd);

  /// Close the ring, drain everything (including the defer log), join the
  /// consumer, and return the final report. One-shot.
  [[nodiscard]] ServiceReport finish();

  /// Install the per-mapping observer (forwarded to ParaCosm, minus the
  /// updates degraded to count-only). Call before the first submit().
  void set_match_callback(
      std::function<void(std::span<const csm::Assignment>)> cb) {
    on_match_ = std::move(cb);
  }

  /// Install the per-update completion observer (consumer thread). Fired
  /// after every processed update — submitted, deferred-replayed, or drained
  /// at shutdown — so a caller sequencing acknowledgements (the shard worker)
  /// sees exactly one completion per admitted update. Call before the first
  /// submit().
  void set_update_callback(std::function<void(const UpdateDone&)> cb) {
    on_done_ = std::move(cb);
  }

  [[nodiscard]] const IngestQueue& queue() const noexcept { return queue_; }

 private:
  void consumer_loop();
  void process_one(const graph::GraphUpdate& upd, bool degraded, bool deferred);
  void retry_deferred();
  [[nodiscard]] bool pop_deferred(graph::GraphUpdate& out);
  void maybe_control_tick();
  void maybe_snapshot();
  void maybe_flush_metrics();
  void flush_metrics();

  engine::ParaCosm& engine_;
  ServiceOptions opts_;
  FaultHooks hooks_;
  IngestQueue queue_;
  std::optional<WalWriter> wal_;
  std::optional<Watchdog> watchdog_;
  util::CancelToken token_;
  std::uint64_t arm_epoch_ = 0;  ///< consumer-minted epochs (never token_.arm())
  std::int64_t budget_ns_ = 0;

  std::mutex defer_m_;
  std::deque<graph::GraphUpdate> defer_log_;
  std::uint64_t defer_backoff_ = 1;   ///< consumer iterations between probes
  std::uint64_t defer_countdown_ = 0;

  // Consumer-thread state.
  std::uint64_t seq_ = 0;  ///< stands in for WAL seq when durability is off
  std::uint64_t since_snapshot_ = 0;
  std::uint64_t since_metrics_ = 0;
  bool deliver_ = true;    ///< false while processing a degraded update
  // Adaptive admission (consumer thread): per-window latency histogram and
  // the last-seen overflow counters, reset/advanced at each control tick.
  std::optional<control::AdmissionController> admission_;
  obs::Histogram window_hist_;
  std::uint64_t since_control_ = 0;
  std::uint64_t last_degraded_ = 0;
  std::uint64_t last_shed_ = 0;
  engine::ServiceStats stats_;
  std::uint64_t positive_ = 0;
  std::uint64_t negative_ = 0;
  obs::Histogram latency_hist_;
  std::vector<graph::GraphUpdate> applied_order_;
  std::string error_;

  std::function<void(std::span<const csm::Assignment>)> on_match_;
  std::function<void(const UpdateDone&)> on_done_;
  util::WallTimer wall_;
  std::thread consumer_;
  bool finished_ = false;
};

}  // namespace paracosm::service
