#include "graph/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace paracosm::graph {

DegreeStats degree_stats(const DataGraph& g) {
  std::vector<std::uint32_t> degrees;
  degrees.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.vertex_capacity(); ++v)
    if (g.has_vertex(v)) degrees.push_back(g.degree(v));
  DegreeStats out;
  if (degrees.empty()) return out;
  std::sort(degrees.begin(), degrees.end());
  out.min = degrees.front();
  out.max = degrees.back();
  std::uint64_t sum = 0;
  for (const auto d : degrees) sum += d;
  out.mean = static_cast<double>(sum) / static_cast<double>(degrees.size());
  const auto pct = [&](double p) {
    return degrees[static_cast<std::size_t>(p * (degrees.size() - 1))];
  };
  out.p50 = pct(0.50);
  out.p90 = pct(0.90);
  out.p99 = pct(0.99);
  return out;
}

std::map<Label, std::uint32_t> label_histogram(const DataGraph& g) {
  std::map<Label, std::uint32_t> hist;
  for (VertexId v = 0; v < g.vertex_capacity(); ++v)
    if (g.has_vertex(v)) ++hist[g.label(v)];
  return hist;
}

double label_concentration(const DataGraph& g) {
  const auto hist = label_histogram(g);
  const double n = g.num_vertices();
  if (n == 0) return 0;
  double sum = 0;
  for (const auto& [label, count] : hist) {
    const double p = static_cast<double>(count) / n;
    sum += p * p;
  }
  return sum;
}

double clustering_coefficient(const DataGraph& g, std::uint32_t samples,
                              util::Rng& rng) {
  if (g.num_vertices() == 0) return 0;
  double total = 0;
  std::uint32_t counted = 0;
  for (std::uint32_t s = 0; s < 4 * samples && counted < samples; ++s) {
    const auto v = static_cast<VertexId>(rng.bounded(g.vertex_capacity()));
    if (!g.has_vertex(v) || g.degree(v) < 2) continue;
    ++counted;
    const auto nbrs = g.neighbors(v);
    std::uint32_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j)
        if (g.has_edge(nbrs[i].v, nbrs[j].v)) ++closed;
    const double pairs =
        static_cast<double>(nbrs.size()) * (static_cast<double>(nbrs.size()) - 1) / 2;
    total += static_cast<double>(closed) / pairs;
  }
  return counted ? total / counted : 0.0;
}

std::uint32_t connected_components(const DataGraph& g) {
  std::vector<bool> seen(g.vertex_capacity(), false);
  std::uint32_t components = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < g.vertex_capacity(); ++start) {
    if (!g.has_vertex(start) || seen[start]) continue;
    ++components;
    seen[start] = true;
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const auto& nb : g.neighbors(u)) {
        if (!seen[nb.v]) {
          seen[nb.v] = true;
          stack.push_back(nb.v);
        }
      }
    }
  }
  return components;
}

std::string describe(const DataGraph& g, util::Rng& rng) {
  const DegreeStats deg = degree_stats(g);
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "|V|=%u |E|=%llu |L(V)|=%u |L(E)|=%u components=%u\n"
      "degree: mean=%.2f p50=%u p90=%u p99=%u max=%u (tail %.1fx)\n"
      "label concentration Σp²=%.4f, clustering≈%.4f",
      g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
      g.num_vertex_labels(), g.num_edge_labels(), connected_components(g), deg.mean,
      deg.p50, deg.p90, deg.p99, deg.max, deg.tail_ratio(),
      label_concentration(g), clustering_coefficient(g, 200, rng));
  return buf;
}

}  // namespace paracosm::graph
