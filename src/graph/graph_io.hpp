// Text I/O in the format shared by the public CSM benchmarks
// (TurboFlux / SymBi / RapidFlow / the Sun et al. in-depth study):
//
//   graph file:   "v <id> <vlabel> [degree]"  then  "e <u> <v> [elabel]"
//   stream file:  "<op>e <u> <v> [elabel]" / "<op>v <id> [vlabel]"
//                 where <op> is '+' (insertion) or '-' (deletion); a missing
//                 op on an edge line means insertion.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"
#include "graph/types.hpp"

namespace paracosm::graph {

/// One rejected input line, pinned to its position. Rejection reasons cover
/// structure (missing/garbage fields, unknown tags), lexical validity
/// (negative or non-numeric ids), and range (ids beyond kMaxVertexId, labels
/// beyond kMaxLabel — which would otherwise trigger multi-GB dense-vector
/// resizes downstream).
struct ParseError {
  std::size_t line_no = 0;
  std::string line;
  std::string reason;

  [[nodiscard]] std::string to_string() const {
    return "line " + std::to_string(line_no) + ": " + reason + " ('" + line + "')";
  }
};

/// Thrown by the loaders when no error collector is supplied. Subclasses
/// runtime_error so pre-existing catch sites keep working.
class ParseException : public std::runtime_error {
 public:
  explicit ParseException(ParseError err)
      : std::runtime_error("graph_io: " + err.to_string()), err_(std::move(err)) {}
  [[nodiscard]] const ParseError& error() const noexcept { return err_; }

 private:
  ParseError err_;
};

/// Parse a data graph. With `errors == nullptr` (default) the first bad line
/// throws ParseException; with a collector, bad lines are recorded and
/// skipped so a mostly-good file still loads (callers decide whether partial
/// input is acceptable — paracosm_run/paracosm_serve expose `--strict`).
[[nodiscard]] DataGraph load_data_graph(std::istream& in,
                                        std::vector<ParseError>* errors = nullptr);
[[nodiscard]] DataGraph load_data_graph_file(const std::string& path,
                                             std::vector<ParseError>* errors = nullptr);

/// Parse a query graph (same format; ids must be dense from 0).
[[nodiscard]] QueryGraph load_query_graph(std::istream& in,
                                          std::vector<ParseError>* errors = nullptr);
[[nodiscard]] QueryGraph load_query_graph_file(const std::string& path,
                                               std::vector<ParseError>* errors = nullptr);

/// Parse an update stream.
[[nodiscard]] std::vector<GraphUpdate> load_update_stream(
    std::istream& in, std::vector<ParseError>* errors = nullptr);
[[nodiscard]] std::vector<GraphUpdate> load_update_stream_file(
    const std::string& path, std::vector<ParseError>* errors = nullptr);

void save_data_graph(const DataGraph& g, std::ostream& out);
void save_query_graph(const QueryGraph& q, std::ostream& out);
void save_update_stream(const std::vector<GraphUpdate>& stream, std::ostream& out);

void save_data_graph_file(const DataGraph& g, const std::string& path);
void save_query_graph_file(const QueryGraph& q, const std::string& path);
void save_update_stream_file(const std::vector<GraphUpdate>& stream,
                             const std::string& path);

}  // namespace paracosm::graph
