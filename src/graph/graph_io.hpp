// Text I/O in the format shared by the public CSM benchmarks
// (TurboFlux / SymBi / RapidFlow / the Sun et al. in-depth study):
//
//   graph file:   "v <id> <vlabel> [degree]"  then  "e <u> <v> [elabel]"
//   stream file:  "<op>e <u> <v> [elabel]" / "<op>v <id> [vlabel]"
//                 where <op> is '+' (insertion) or '-' (deletion); a missing
//                 op on an edge line means insertion.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"
#include "graph/types.hpp"

namespace paracosm::graph {

/// Parse a data graph. Throws std::runtime_error on malformed input.
[[nodiscard]] DataGraph load_data_graph(std::istream& in);
[[nodiscard]] DataGraph load_data_graph_file(const std::string& path);

/// Parse a query graph (same format; ids must be dense from 0).
[[nodiscard]] QueryGraph load_query_graph(std::istream& in);
[[nodiscard]] QueryGraph load_query_graph_file(const std::string& path);

/// Parse an update stream.
[[nodiscard]] std::vector<GraphUpdate> load_update_stream(std::istream& in);
[[nodiscard]] std::vector<GraphUpdate> load_update_stream_file(const std::string& path);

void save_data_graph(const DataGraph& g, std::ostream& out);
void save_query_graph(const QueryGraph& q, std::ostream& out);
void save_update_stream(const std::vector<GraphUpdate>& stream, std::ostream& out);

void save_data_graph_file(const DataGraph& g, const std::string& path);
void save_query_graph_file(const QueryGraph& q, const std::string& path);
void save_update_stream_file(const std::vector<GraphUpdate>& stream,
                             const std::string& path);

}  // namespace paracosm::graph
