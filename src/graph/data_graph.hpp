// Dynamic labeled data graph G.
//
// Sorted per-vertex adjacency vectors give O(log d) edge lookup and O(d)
// insertion — the layout every published CSM system uses for its streaming
// graph. Mutation is single-writer by default; the batch executor applies
// *safe* updates concurrently under external striped per-vertex locks (safe
// updates touch pairwise-disjoint endpoints in strict mode, see DESIGN.md §4),
// so the edge counter is the only shared field and is atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace paracosm::graph {

class DataGraph {
 public:
  DataGraph() = default;

  DataGraph(const DataGraph& other);
  DataGraph& operator=(const DataGraph& other);
  DataGraph(DataGraph&&) noexcept = default;
  DataGraph& operator=(DataGraph&&) noexcept = default;

  /// Append a vertex with the given label; returns its id.
  VertexId add_vertex(Label label);
  /// Ensure vertex `id` exists (filling gaps with dead vertices) and set its
  /// label — used by file loaders with explicit ids.
  void add_vertex_with_id(VertexId id, Label label);
  /// Remove a vertex and all incident edges. Returns number of edges removed.
  std::size_t remove_vertex(VertexId id);

  /// Insert undirected edge (u,v) with label. Returns false if it already
  /// exists or endpoints are invalid (duplicate inserts are ignored, matching
  /// streaming-benchmark semantics).
  bool add_edge(VertexId u, VertexId v, Label elabel);
  /// Remove edge (u,v); returns its label if it existed.
  std::optional<Label> remove_edge(VertexId u, VertexId v);

  /// Apply or revert a GraphUpdate. Returns true if the graph changed.
  bool apply(const GraphUpdate& upd);

  [[nodiscard]] bool has_vertex(VertexId id) const noexcept {
    return id < vertices_.size() && vertices_[id].alive;
  }
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;
  [[nodiscard]] std::optional<Label> edge_label(VertexId u, VertexId v) const noexcept;

  [[nodiscard]] Label label(VertexId u) const noexcept { return vertices_[u].label; }
  [[nodiscard]] std::uint32_t degree(VertexId u) const noexcept {
    return static_cast<std::uint32_t>(vertices_[u].nbrs.size());
  }
  [[nodiscard]] std::span<const Neighbor> neighbors(VertexId u) const noexcept {
    return vertices_[u].nbrs;
  }

  /// Number of vertex slots ever allocated (ids are dense in [0, size)).
  [[nodiscard]] std::uint32_t vertex_capacity() const noexcept {
    return static_cast<std::uint32_t>(vertices_.size());
  }
  [[nodiscard]] std::uint32_t num_vertices() const noexcept { return alive_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return num_edges_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double average_degree() const noexcept {
    return alive_ ? 2.0 * static_cast<double>(num_edges()) / alive_ : 0.0;
  }

  /// Number of neighbors of `v` with vertex label `l` (data-side NLF; O(d)).
  [[nodiscard]] std::uint32_t nlf(VertexId v, Label l) const noexcept;

  /// All alive vertices with the given label (scan of the label bucket).
  [[nodiscard]] std::vector<VertexId> vertices_with_label(Label l) const;

  /// Materialized edge list (u < v), e.g. for building update streams.
  [[nodiscard]] std::vector<Edge> edge_list() const;

  [[nodiscard]] std::uint32_t max_degree() const noexcept;
  [[nodiscard]] std::uint32_t num_vertex_labels() const;
  [[nodiscard]] std::uint32_t num_edge_labels() const;

  /// Structural equality (labels + adjacency of alive vertices) — used by
  /// tests to verify that "safe" updates leave indices consistent.
  [[nodiscard]] bool same_structure(const DataGraph& other) const;

 private:
  struct VertexRec {
    Label label = 0;
    bool alive = false;
    std::vector<Neighbor> nbrs;
  };

  std::vector<VertexRec> vertices_;
  std::vector<std::vector<VertexId>> by_label_;  // may contain dead ids; filtered on read
  std::atomic<std::uint64_t> num_edges_{0};
  std::uint32_t alive_ = 0;

  bool insert_directed(VertexId from, VertexId to, Label elabel);
  bool erase_directed(VertexId from, VertexId to) noexcept;
};

}  // namespace paracosm::graph
