// Dynamic labeled data graph G.
//
// Layout (see DESIGN.md §1):
//
//  * Label-partitioned adjacency. Each vertex's neighbor vector is kept
//    sorted by (neighbor's vertex label, neighbor id) and paired with a
//    small per-vertex directory of (label, end-offset) segments. Candidate
//    enumeration asks for `neighbors_with_label(v, l)` and walks only the
//    matching-label segment as a span; `edge_label` locates the segment via
//    the directory and then gallops within it, so consistency checks during
//    backtracking cost O(log |segment|) instead of O(log d).
//
//  * Incrementally maintained NLF. The directory doubles as the exact
//    neighbor-label-frequency table: nlf(v, l) is the width of l's segment,
//    maintained O(1)-amortized by add_edge/remove_edge instead of an O(d)
//    rescan per query. Each vertex additionally carries a packed 64-bit
//    signature (nlf_signature.hpp); a mutation refreshes only the touched
//    lane, recomputing its exact total from the (small, cache-hot) segment
//    directory, so no per-lane counter array bloats the vertex record.
//    Filters use the signature as a one-instruction containment pre-reject
//    before the exact check. `nlf_recount(v, l)` keeps the O(d) reference
//    scan for tests/benches.
//
//  * Tombstoned label buckets. `by_label_[l]` records vertex ids plus a
//    dead-entry counter; `remove_vertex`/relabel retire entries lazily (a
//    stale entry is one whose vertex died, changed label, or was revived at
//    a different bucket position) and a bucket compacts itself once more
//    than half its entries are dead. `count_vertices_with_label` is O(1)
//    and `label_view(l)` iterates live ids without materializing a vector.
//
// Concurrency invariant (DESIGN.md §4): mutation is single-writer by
// default; the batch executor applies *safe* updates concurrently under
// external striped per-vertex locks. That argument relies on a safe edge
// update touching only its two endpoints' records — which still holds here:
// an edge mutation updates the adjacency vector, segment directory, and
// NLF signature of exactly the two endpoint VertexRecs (the
// neighbor's label is read from an immutable-under-edge-ops field), leaves
// `by_label_` untouched, and bumps only the atomic edge counter. Strict
// mode's endpoint-disjointness therefore remains a race-freedom proof.
#pragma once

#include <atomic>
#include <cstdint>
#include <iterator>
#include <optional>
#include <span>
#include <vector>

#include "graph/nlf_signature.hpp"
#include "graph/types.hpp"

namespace paracosm::graph {

/// Why a checked mutation did (or did not) change the graph. kApplied is the
/// only success value; every rejection names the precise edge case so
/// executors and the service layer can skip + count instead of asserting.
enum class MutationStatus : std::uint8_t {
  kApplied,
  kDuplicateEdge,   ///< insert of an edge that already exists
  kMissingEdge,     ///< delete of an edge that does not exist
  kMissingVertex,   ///< edge op naming a dead/unknown endpoint
  kSelfLoop,        ///< insert with u == v
  kVertexExists,    ///< vertex insert for an alive id with the same label
  kInvalidId,       ///< id/label beyond the admission caps (types.hpp)
};

[[nodiscard]] constexpr const char* to_string(MutationStatus s) noexcept {
  switch (s) {
    case MutationStatus::kApplied: return "applied";
    case MutationStatus::kDuplicateEdge: return "duplicate-edge";
    case MutationStatus::kMissingEdge: return "missing-edge";
    case MutationStatus::kMissingVertex: return "missing-vertex";
    case MutationStatus::kSelfLoop: return "self-loop";
    case MutationStatus::kVertexExists: return "vertex-exists";
    case MutationStatus::kInvalidId: return "invalid-id";
  }
  return "?";
}

class DataGraph {
 public:
  DataGraph() = default;

  DataGraph(const DataGraph& other);
  DataGraph& operator=(const DataGraph& other);
  DataGraph(DataGraph&&) noexcept = default;
  DataGraph& operator=(DataGraph&&) noexcept = default;

  /// Append a vertex with the given label; returns its id.
  VertexId add_vertex(Label label);
  /// Ensure vertex `id` exists (filling gaps with dead vertices) and set its
  /// label — used by file loaders with explicit ids. Relabeling an alive
  /// vertex repositions it in the label buckets and in its neighbors'
  /// label-partitioned adjacency.
  void add_vertex_with_id(VertexId id, Label label);
  /// Remove a vertex and all incident edges. Returns number of edges removed.
  std::size_t remove_vertex(VertexId id);

  /// Insert undirected edge (u,v) with label. Returns false if it already
  /// exists or endpoints are invalid (duplicate inserts are ignored, matching
  /// streaming-benchmark semantics).
  bool add_edge(VertexId u, VertexId v, Label elabel);
  /// Remove edge (u,v); returns its label if it existed.
  std::optional<Label> remove_edge(VertexId u, VertexId v);

  /// Apply or revert a GraphUpdate. Returns true if the graph changed.
  bool apply(const GraphUpdate& upd);

  /// Diagnosing twin of apply(): same state transitions for every input
  /// (`apply_checked(u) changes the graph` ⇔ `apply(u)` would), but reports
  /// *why* a no-op was a no-op. Purely a pre-classification plus apply(); it
  /// never mutates on a rejection path. Used by the service layer and the
  /// fuzzer's invalid-op mix (ISSUE 4 satellite).
  MutationStatus apply_checked(const GraphUpdate& upd);

  [[nodiscard]] bool has_vertex(VertexId id) const noexcept {
    return id < vertices_.size() && vertices_[id].alive;
  }
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;
  [[nodiscard]] std::optional<Label> edge_label(VertexId u, VertexId v) const noexcept;
  /// Hot-path variant for callers that already know `v`'s vertex label
  /// (e.g. the backtracking consistency check, where it equals the query
  /// label): skips the vertices_[v] load. Precondition: both ids valid and
  /// v_label == label(v).
  [[nodiscard]] std::optional<Label> edge_label(VertexId u, VertexId v,
                                                Label v_label) const noexcept;

  [[nodiscard]] Label label(VertexId u) const noexcept { return vertices_[u].label; }
  [[nodiscard]] std::uint32_t degree(VertexId u) const noexcept {
    return static_cast<std::uint32_t>(vertices_[u].nbrs.size());
  }
  /// Full adjacency of `u`, sorted by (neighbor label, neighbor id).
  [[nodiscard]] std::span<const Neighbor> neighbors(VertexId u) const noexcept {
    return vertices_[u].nbrs;
  }
  /// The contiguous segment of u's adjacency whose neighbors carry vertex
  /// label `l` (sorted by id). O(log #distinct-neighbor-labels).
  [[nodiscard]] std::span<const Neighbor> neighbors_with_label(VertexId u,
                                                               Label l) const noexcept;

  /// Number of vertex slots ever allocated (ids are dense in [0, size)).
  [[nodiscard]] std::uint32_t vertex_capacity() const noexcept {
    return static_cast<std::uint32_t>(vertices_.size());
  }
  [[nodiscard]] std::uint32_t num_vertices() const noexcept { return alive_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return num_edges_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double average_degree() const noexcept {
    return alive_ ? 2.0 * static_cast<double>(num_edges()) / alive_ : 0.0;
  }

  /// Number of neighbors of `v` with vertex label `l` (data-side NLF).
  /// O(log #distinct-neighbor-labels) directory lookup, not an O(d) scan.
  [[nodiscard]] std::uint32_t nlf(VertexId v, Label l) const noexcept {
    const auto seg = neighbors_with_label(v, l);
    return static_cast<std::uint32_t>(seg.size());
  }
  /// O(d) reference recount of nlf(v, l); kept for tests and microbenches.
  [[nodiscard]] std::uint32_t nlf_recount(VertexId v, Label l) const noexcept;
  /// Packed 64-bit NLF signature of `v`, maintained O(1) per edge mutation.
  [[nodiscard]] NlfSig nlf_signature(VertexId v) const noexcept {
    return vertices_[v].sig;
  }

  /// Non-materializing iteration over alive vertices with a given label.
  /// Skips tombstoned bucket entries in place.
  class LabelView {
   public:
    class iterator {
     public:
      using value_type = VertexId;
      using difference_type = std::ptrdiff_t;
      using iterator_category = std::forward_iterator_tag;

      iterator() = default;
      iterator(const DataGraph* g, Label l, std::uint32_t i) : g_(g), l_(l), i_(i) {
        skip_dead();
      }
      VertexId operator*() const noexcept { return g_->by_label_[l_].ids[i_]; }
      iterator& operator++() noexcept {
        ++i_;
        skip_dead();
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator tmp = *this;
        ++*this;
        return tmp;
      }
      friend bool operator==(const iterator& a, const iterator& b) noexcept {
        return a.i_ == b.i_;
      }

     private:
      void skip_dead() noexcept {
        const auto& ids = g_->by_label_[l_].ids;
        while (i_ < ids.size() && !g_->bucket_entry_live(l_, i_)) ++i_;
      }
      const DataGraph* g_ = nullptr;
      Label l_ = 0;
      std::uint32_t i_ = 0;
    };

    LabelView(const DataGraph* g, Label l) : g_(g), l_(l) {}
    [[nodiscard]] iterator begin() const noexcept {
      if (g_ == nullptr) return iterator();
      return iterator(g_, l_, 0);
    }
    [[nodiscard]] iterator end() const noexcept {
      if (g_ == nullptr) return iterator();
      return iterator(g_, l_,
                      static_cast<std::uint32_t>(g_->by_label_[l_].ids.size()));
    }

   private:
    const DataGraph* g_ = nullptr;  // null -> empty view (label unseen)
    Label l_ = 0;
  };

  /// Lazily filtered view over alive vertices labeled `l` (no allocation).
  [[nodiscard]] LabelView label_view(Label l) const noexcept {
    if (l >= by_label_.size()) return LabelView(nullptr, l);
    return LabelView(this, l);
  }
  /// Exact number of alive vertices labeled `l` (O(1): bucket size − dead).
  [[nodiscard]] std::uint32_t count_vertices_with_label(Label l) const noexcept {
    if (l >= by_label_.size()) return 0;
    const LabelBucket& b = by_label_[l];
    return static_cast<std::uint32_t>(b.ids.size()) - b.dead;
  }
  /// Materialized list of alive vertices labeled `l` (prefer label_view()).
  [[nodiscard]] std::vector<VertexId> vertices_with_label(Label l) const;

  /// Materialized edge list (u < v), e.g. for building update streams.
  [[nodiscard]] std::vector<Edge> edge_list() const;

  [[nodiscard]] std::uint32_t max_degree() const noexcept;
  [[nodiscard]] std::uint32_t num_vertex_labels() const;
  [[nodiscard]] std::uint32_t num_edge_labels() const;

  /// Structural equality (labels + adjacency of alive vertices) — used by
  /// tests to verify that "safe" updates leave indices consistent.
  [[nodiscard]] bool same_structure(const DataGraph& other) const;

 private:
  /// Directory entry: neighbors with vertex label `label` occupy
  /// nbrs[prev.end, end). Entries sorted by label; first segment starts at 0.
  /// Emptied segments persist with width 0 (see erase_directed), so the
  /// directory size is bounded by the distinct labels ever adjacent.
  struct LabelSeg {
    Label label;
    std::uint32_t end;
  };

  struct VertexRec {
    Label label = 0;
    bool alive = false;
    std::uint32_t bucket_pos = 0;  ///< index of the live entry in by_label_
    NlfSig sig = 0;                ///< packed NLF signature (O(1) maintained)
    std::vector<Neighbor> nbrs;    ///< sorted by (label(v), v)
    std::vector<LabelSeg> segs;    ///< label-range directory over nbrs
  };

  /// Label bucket with tombstones: an entry `ids[i]` is live iff its vertex
  /// is alive, still carries this label, and `bucket_pos == i` (revival or
  /// relabel appends a fresh entry, orphaning the old one). `dead` counts
  /// stale entries exactly; buckets compact once dead*2 > size.
  struct LabelBucket {
    std::vector<VertexId> ids;
    std::uint32_t dead = 0;
  };

  std::vector<VertexRec> vertices_;
  std::vector<LabelBucket> by_label_;
  std::atomic<std::uint64_t> num_edges_{0};
  std::uint32_t alive_ = 0;
  std::size_t numa_advised_cap_ = 0;  ///< vertices_ capacity last given
                                      ///< placement advice (DESIGN.md §10)

  [[nodiscard]] bool bucket_entry_live(Label l, std::uint32_t i) const noexcept {
    const VertexId id = by_label_[l].ids[i];
    const VertexRec& r = vertices_[id];
    return r.alive && r.label == l && r.bucket_pos == i;
  }
  void bucket_push(VertexId id, Label l);
  void bucket_retire(Label l);

  /// [begin, end) offsets of label `l`'s segment in `rec.nbrs` (empty if
  /// absent, positioned at the insertion point).
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> seg_range(
      const VertexRec& rec, Label l) const noexcept;

  bool insert_directed(VertexId from, VertexId to, Label elabel);
  /// Remove `to` from `from`'s adjacency; returns the edge label if present.
  std::optional<Label> erase_directed(VertexId from, VertexId to) noexcept;
  /// Refresh the signature lane that `neighbor_label` hashes into, summing
  /// the widths of that lane's directory segments (exact, collision-safe).
  void lane_refresh(VertexRec& rec, Label neighbor_label) noexcept;
};

}  // namespace paracosm::graph
