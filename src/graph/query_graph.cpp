#include "graph/query_graph.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace paracosm::graph {

QueryGraph::QueryGraph(std::vector<Label> vertex_labels, std::vector<Edge> edges)
    : labels_(std::move(vertex_labels)), edges_(std::move(edges)) {
  const auto n = static_cast<VertexId>(labels_.size());
  adj_.resize(n);
  nlf_.resize(n);
  for (const Edge& e : edges_) {
    if (e.u >= n || e.v >= n)
      throw std::invalid_argument("QueryGraph: edge endpoint out of range");
    if (e.u == e.v) throw std::invalid_argument("QueryGraph: self-loop");
    if (has_edge(e.u, e.v)) throw std::invalid_argument("QueryGraph: duplicate edge");
    adj_[e.u].push_back({e.v, e.elabel});
    adj_[e.v].push_back({e.u, e.elabel});
  }
  for (auto& list : adj_) std::sort(list.begin(), list.end());
  sig_.assign(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    std::vector<Label> nbr_labels;
    nbr_labels.reserve(adj_[u].size());
    for (const Neighbor& nb : adj_[u]) nbr_labels.push_back(labels_[nb.v]);
    std::sort(nbr_labels.begin(), nbr_labels.end());
    std::array<std::uint32_t, kNlfSigLanes> lanes{};
    for (std::size_t i = 0; i < nbr_labels.size();) {
      std::size_t j = i;
      while (j < nbr_labels.size() && nbr_labels[j] == nbr_labels[i]) ++j;
      nlf_[u].emplace_back(nbr_labels[i], static_cast<std::uint32_t>(j - i));
      lanes[nlf_sig_lane(nbr_labels[i])] += static_cast<std::uint32_t>(j - i);
      i = j;
    }
    for (unsigned lane = 0; lane < kNlfSigLanes; ++lane)
      sig_[u] = nlf_sig_with_lane(sig_[u], lane, lanes[lane]);
  }
  for (const Edge& e : edges_) {
    triples_.insert(pack_triple(labels_[e.u], labels_[e.v], e.elabel));
    triples_.insert(pack_triple(labels_[e.v], labels_[e.u], e.elabel));
  }
}

bool QueryGraph::has_edge(VertexId u, VertexId v) const noexcept {
  return edge_label(u, v).has_value();
}

std::optional<Label> QueryGraph::edge_label(VertexId u, VertexId v) const noexcept {
  if (u >= adj_.size()) return std::nullopt;
  const auto& list = adj_[u];
  const auto it = std::lower_bound(list.begin(), list.end(), Neighbor{v, 0});
  if (it == list.end() || it->v != v) return std::nullopt;
  return it->elabel;
}

bool QueryGraph::connected() const {
  if (labels_.empty()) return true;
  std::vector<bool> seen(labels_.size(), false);
  std::vector<VertexId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (const Neighbor& nb : adj_[u]) {
      if (!seen[nb.v]) {
        seen[nb.v] = true;
        ++visited;
        stack.push_back(nb.v);
      }
    }
  }
  return visited == labels_.size();
}

std::uint32_t QueryGraph::nlf(VertexId u, Label l) const noexcept {
  const auto& items = nlf_[u];
  const auto it = std::lower_bound(
      items.begin(), items.end(), l,
      [](const std::pair<Label, std::uint32_t>& e, Label lbl) noexcept {
        return e.first < lbl;
      });
  return it == items.end() || it->first != l ? 0 : it->second;
}

bool QueryGraph::label_triple_exists(Label lu, Label lv, Label le) const noexcept {
  return triples_.contains(pack_triple(lu, lv, le));
}

std::vector<std::pair<VertexId, VertexId>> QueryGraph::matching_edges(
    Label lu, Label lv, Label le, bool ignore_edge_labels) const {
  std::vector<std::pair<VertexId, VertexId>> out;
  for (const Edge& e : edges_) {
    const bool label_ok = ignore_edge_labels || e.elabel == le;
    if (!label_ok) continue;
    if (labels_[e.u] == lu && labels_[e.v] == lv) out.emplace_back(e.u, e.v);
    if (labels_[e.v] == lu && labels_[e.u] == lv) out.emplace_back(e.v, e.u);
  }
  return out;
}

std::string QueryGraph::describe() const {
  std::string out = "Q(|V|=" + std::to_string(num_vertices()) +
                    ", |E|=" + std::to_string(num_edges()) + "):";
  for (const Edge& e : edges_) {
    out += " (" + std::to_string(e.u) + "-" + std::to_string(e.v) + ":" +
           std::to_string(e.elabel) + ")";
  }
  return out;
}

std::uint64_t QueryGraph::pack_triple(Label lu, Label lv, Label le) noexcept {
  // 21 bits per component is ample for benchmark label alphabets.
  return (static_cast<std::uint64_t>(lu) << 42) ^
         (static_cast<std::uint64_t>(lv & 0x1fffff) << 21) ^
         static_cast<std::uint64_t>(le & 0x1fffff);
}

}  // namespace paracosm::graph
