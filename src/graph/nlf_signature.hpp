// Packed neighbor-label-frequency (NLF) signatures.
//
// An NlfSig summarizes a vertex's neighbor-label multiset as 16 lanes of
// 4-bit saturating counters packed into one uint64. Labels hash onto lanes
// with a Fibonacci multiplier, and a lane holds min(7, sum of counts of all
// labels mapping to it) — values 8..15 are never stored, which leaves the
// lane's top bit free as a borrow guard for the SWAR containment test below.
//
// Soundness: if v's exact NLF dominates u's (per label), then every lane of
// v's signature dominates the matching lane of u's, because each lane is a
// monotone function (capped sum) of the per-label counts. So
// `!nlf_sig_covers(sig(v), sig(u))` is a certain reject; a passing check
// still requires the exact per-label comparison. Hash collisions only merge
// lanes and therefore only weaken the filter, never break it.
#pragma once

#include <cstdint>

namespace paracosm::graph {

using NlfSig = std::uint64_t;

inline constexpr unsigned kNlfSigLanes = 16;
inline constexpr unsigned kNlfSigLaneBits = 4;
inline constexpr std::uint64_t kNlfSigLaneMax = 7;  // keep top bit clear
inline constexpr std::uint64_t kNlfSigGuard = 0x8888888888888888ULL;

[[nodiscard]] inline constexpr unsigned nlf_sig_lane(std::uint32_t label) noexcept {
  return static_cast<unsigned>((label * 0x9E3779B9u) >> 28);
}

[[nodiscard]] inline constexpr std::uint64_t nlf_sig_get_lane(NlfSig sig,
                                                              unsigned lane) noexcept {
  return (sig >> (lane * kNlfSigLaneBits)) & 0xF;
}

/// Overwrite one lane with min(count, 7).
[[nodiscard]] inline constexpr NlfSig nlf_sig_with_lane(NlfSig sig, unsigned lane,
                                                        std::uint64_t count) noexcept {
  const unsigned shift = lane * kNlfSigLaneBits;
  const std::uint64_t capped = count < kNlfSigLaneMax ? count : kNlfSigLaneMax;
  return (sig & ~(std::uint64_t{0xF} << shift)) | (capped << shift);
}

/// Signature after adding one more neighbor with `label` (saturating).
[[nodiscard]] inline constexpr NlfSig nlf_sig_add(NlfSig sig, std::uint32_t label) noexcept {
  const unsigned lane = nlf_sig_lane(label);
  return nlf_sig_with_lane(sig, lane, nlf_sig_get_lane(sig, lane) + 1);
}

/// True iff every lane of `have` >= the matching lane of `need`.
/// SWAR: per-lane subtraction cannot borrow across lanes because stored
/// values are <= 7, so setting each lane's guard bit in `have` absorbs the
/// borrow; the guard bit survives exactly when have-lane >= need-lane.
[[nodiscard]] inline constexpr bool nlf_sig_covers(NlfSig have, NlfSig need) noexcept {
  return (((have | kNlfSigGuard) - need) & kNlfSigGuard) == kNlfSigGuard;
}

}  // namespace paracosm::graph
