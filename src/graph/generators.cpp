#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace paracosm::graph {

DatasetSpec DatasetSpec::scaled(double factor) const {
  DatasetSpec out = *this;
  out.num_vertices = std::max<std::uint32_t>(
      16, static_cast<std::uint32_t>(std::lround(num_vertices * factor)));
  return out;
}

// Default vertex counts are ~1/250th of the real datasets, keeping the
// between-dataset size ordering (Amazon < Orkut < LiveJournal ≈ LSBench).
DatasetSpec amazon_spec(double scale) {
  return DatasetSpec{"amazon", 1600, 12.06, 6, 1}.scaled(scale);
}
DatasetSpec livejournal_spec(double scale) {
  return DatasetSpec{"livejournal", 19400, 17.68, 30, 1}.scaled(scale);
}
DatasetSpec lsbench_spec(double scale) {
  return DatasetSpec{"lsbench", 20800, 7.78, 1, 44}.scaled(scale);
}
DatasetSpec orkut_spec(double scale) {
  return DatasetSpec{"orkut", 12300, 20.0, 20, 20}.scaled(scale);
}

std::vector<DatasetSpec> all_dataset_specs(double scale) {
  return {amazon_spec(scale), livejournal_spec(scale), lsbench_spec(scale),
          orkut_spec(scale)};
}

std::optional<DatasetSpec> dataset_spec_by_name(const std::string& name, double scale) {
  for (DatasetSpec& spec : all_dataset_specs(scale))
    if (spec.name == name) return spec;
  return std::nullopt;
}

namespace {

/// Quadratically skewed label draw: real co-purchase/social labels are far
/// from uniform, and the skew is what routes a realistic share of updates
/// to the classifier's ADS stage instead of stage-1 label filtering.
[[nodiscard]] Label skewed_label(util::Rng& rng, std::uint32_t count) {
  const double u = rng.uniform();
  return static_cast<Label>(
      std::min<std::uint32_t>(count - 1, static_cast<std::uint32_t>(std::pow(u, 1.5) * count)));
}

}  // namespace

DataGraph generate_power_law(const DatasetSpec& spec, util::Rng& rng) {
  DataGraph g;
  const std::uint32_t n = spec.num_vertices;
  for (std::uint32_t i = 0; i < n; ++i)
    g.add_vertex(skewed_label(rng, spec.num_vertex_labels));

  // Each new vertex attaches m ≈ avg_degree / 2 edges. Attachment targets are
  // drawn from a pool containing each vertex once per incident edge (plus one
  // base occurrence), which yields the classic preferential-attachment
  // heavy-tailed degree distribution.
  const auto m = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(spec.avg_degree / 2.0)));
  std::vector<VertexId> pool;
  pool.reserve(static_cast<std::size_t>(n) * (m + 1));
  const std::uint32_t seed_size = std::min<std::uint32_t>(n, m + 1);
  for (std::uint32_t u = 0; u < seed_size; ++u) {
    for (std::uint32_t v = 0; v < u; ++v) {
      if (g.add_edge(u, v, skewed_label(rng, spec.num_edge_labels))) {
        pool.push_back(u);
        pool.push_back(v);
      }
    }
  }
  for (std::uint32_t u = seed_size; u < n; ++u) {
    std::uint32_t attached = 0;
    std::uint32_t attempts = 0;
    while (attached < m && attempts < 8 * m) {
      ++attempts;
      // Mix preferential attachment with a uniform component so low-degree
      // vertices keep receiving edges (real co-purchase/social graphs are
      // heavy-tailed but not star-dominated).
      const VertexId target = (!pool.empty() && rng.chance(0.75))
                                  ? pool[rng.bounded(pool.size())]
                                  : static_cast<VertexId>(rng.bounded(u));
      if (target == u) continue;
      if (g.add_edge(u, target, skewed_label(rng, spec.num_edge_labels))) {
        pool.push_back(u);
        pool.push_back(target);
        ++attached;
      }
    }
  }
  return g;
}

DataGraph generate_erdos_renyi(std::uint32_t num_vertices, std::uint64_t num_edges,
                               std::uint32_t num_vertex_labels,
                               std::uint32_t num_edge_labels, util::Rng& rng) {
  DataGraph g;
  for (std::uint32_t i = 0; i < num_vertices; ++i)
    g.add_vertex(static_cast<Label>(rng.bounded(num_vertex_labels)));
  std::uint64_t added = 0;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 20 * num_edges + 100;
  while (added < num_edges && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng.bounded(num_vertices));
    const auto v = static_cast<VertexId>(rng.bounded(num_vertices));
    if (u == v) continue;
    if (g.add_edge(u, v, static_cast<Label>(rng.bounded(num_edge_labels)))) ++added;
  }
  return g;
}

std::optional<QueryGraph> extract_query(const DataGraph& g, std::uint32_t size,
                                        util::Rng& rng,
                                        const QueryExtractOptions& opts) {
  if (g.num_vertices() < size || size < 2) return std::nullopt;
  const std::uint32_t cap = g.vertex_capacity();

  for (int attempt = 0; attempt < 48; ++attempt) {
    VertexId seed = static_cast<VertexId>(rng.bounded(cap));
    if (opts.degree_biased_seed) {
      // Endpoint of a random walk step from a uniform vertex ~ degree bias.
      const VertexId anchor = static_cast<VertexId>(rng.bounded(cap));
      if (g.has_vertex(anchor) && g.degree(anchor) > 0) {
        const auto nbrs = g.neighbors(anchor);
        seed = nbrs[rng.bounded(nbrs.size())].v;
      }
    }
    if (!g.has_vertex(seed) || g.degree(seed) == 0) continue;

    std::vector<VertexId> order;        // visit order = query vertex ids
    std::unordered_set<VertexId> seen;
    order.push_back(seed);
    seen.insert(seed);
    VertexId cur = seed;
    std::uint32_t steps = 0;
    const std::uint32_t max_steps = 200 * size;
    while (order.size() < size && steps < max_steps) {
      ++steps;
      const auto nbrs = g.neighbors(cur);
      if (nbrs.empty()) break;
      const VertexId next = nbrs[rng.bounded(nbrs.size())].v;
      if (seen.insert(next).second) order.push_back(next);
      // Occasional restart to a random visited vertex avoids dead ends.
      cur = rng.chance(0.15) ? order[rng.bounded(order.size())] : next;
    }
    if (order.size() < size) continue;

    std::vector<Label> labels(size);
    std::vector<Edge> edges;
    for (std::uint32_t i = 0; i < size; ++i) labels[i] = g.label(order[i]);
    for (std::uint32_t i = 0; i < size; ++i)
      for (std::uint32_t j = i + 1; j < size; ++j)
        if (const auto el = g.edge_label(order[i], order[j]))
          edges.push_back({i, j, *el});
    if (edges.size() < opts.min_edges) continue;
    QueryGraph q(std::move(labels), std::move(edges));
    if (q.connected()) return q;
  }
  return std::nullopt;
}

std::vector<QueryGraph> extract_queries(const DataGraph& g, std::uint32_t size,
                                        std::uint32_t count, util::Rng& rng,
                                        const QueryExtractOptions& opts) {
  std::vector<QueryGraph> out;
  std::uint32_t failures = 0;
  while (out.size() < count && failures < 4 * count + 16) {
    if (auto q = extract_query(g, size, rng, opts))
      out.push_back(std::move(*q));
    else
      ++failures;
  }
  return out;
}

std::vector<GraphUpdate> make_insert_stream(DataGraph& g, double fraction,
                                            util::Rng& rng) {
  std::vector<Edge> edges = g.edge_list();
  rng.shuffle(edges);
  const auto take = static_cast<std::size_t>(
      std::llround(static_cast<double>(edges.size()) * fraction));
  std::vector<GraphUpdate> stream;
  stream.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    const Edge& e = edges[i];
    g.remove_edge(e.u, e.v);
    stream.push_back(GraphUpdate::insert_edge(e.u, e.v, e.elabel));
  }
  return stream;
}

std::vector<GraphUpdate> make_mixed_stream(DataGraph& g, double insert_fraction,
                                           double delete_fraction, util::Rng& rng) {
  const std::vector<GraphUpdate> inserts = make_insert_stream(g, insert_fraction, rng);
  const auto deletes = static_cast<std::size_t>(
      std::llround(static_cast<double>(inserts.size()) * delete_fraction));

  // Mark which inserted edges will be re-deleted.
  std::vector<std::size_t> idx(inserts.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<bool> marked(inserts.size(), false);
  for (std::size_t i = 0; i < deletes; ++i) marked[idx[i]] = true;

  // Interleave: deletions are emitted at random points after their
  // insertion, so truncated prefixes of the stream still contain both ops.
  std::vector<GraphUpdate> stream;
  stream.reserve(inserts.size() + deletes);
  std::vector<GraphUpdate> pending;  // inserted & marked, not yet deleted
  const double target_ratio =
      deletes > 0 ? static_cast<double>(deletes) /
                        static_cast<double>(inserts.size() + deletes)
                  : 0.0;
  std::size_t next = 0;
  while (next < inserts.size() || !pending.empty()) {
    const bool emit_delete =
        !pending.empty() && (next >= inserts.size() || rng.chance(target_ratio));
    if (emit_delete) {
      const std::size_t pick = static_cast<std::size_t>(rng.bounded(pending.size()));
      const GraphUpdate& ins = pending[pick];
      stream.push_back(GraphUpdate::remove_edge(ins.u, ins.v, ins.label));
      pending[pick] = pending.back();
      pending.pop_back();
    } else {
      stream.push_back(inserts[next]);
      if (marked[next]) pending.push_back(inserts[next]);
      ++next;
    }
  }
  return stream;
}

}  // namespace paracosm::graph
