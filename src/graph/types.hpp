// Fundamental identifiers and the graph-update vocabulary (paper Def. 2.3).
#pragma once

#include <cstdint>
#include <limits>

namespace paracosm::graph {

using VertexId = std::uint32_t;
using Label = std::uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Admission caps for externally supplied ids (file loaders, service ingest).
/// DataGraph stores vertices and label buckets in dense vectors indexed by
/// id/label, so a single corrupt line claiming vertex 4e9 would otherwise
/// force a multi-gigabyte resize. 2^27 vertices / 2^20 labels comfortably
/// cover every paper workload while bounding a hostile line to ~the largest
/// legitimate allocation.
inline constexpr VertexId kMaxVertexId = (1u << 27) - 1;
inline constexpr Label kMaxLabel = (1u << 20) - 1;

/// Adjacency entry: neighbor id plus the label of the connecting edge.
/// Query graphs keep lists sorted by `v` (this operator); DataGraph sorts by
/// (neighbor's vertex label, v) with a per-vertex segment directory — see
/// data_graph.hpp.
struct Neighbor {
  VertexId v;
  Label elabel;

  [[nodiscard]] friend constexpr bool operator<(const Neighbor& a,
                                                const Neighbor& b) noexcept {
    return a.v < b.v;
  }
};

/// Undirected labeled edge (u < v is not enforced; helpers normalize).
struct Edge {
  VertexId u;
  VertexId v;
  Label elabel = 0;

  [[nodiscard]] friend constexpr bool operator==(const Edge&, const Edge&) noexcept =
      default;
};

/// One element of the update stream ΔG (Def. 2.3): a single edge or vertex
/// insertion or deletion.
enum class UpdateOp : std::uint8_t {
  kInsertEdge,
  kRemoveEdge,
  kInsertVertex,
  kRemoveVertex,
};

struct GraphUpdate {
  UpdateOp op = UpdateOp::kInsertEdge;
  VertexId u = kInvalidVertex;  ///< first endpoint, or the vertex for vertex ops
  VertexId v = kInvalidVertex;  ///< second endpoint (edge ops only)
  Label label = 0;              ///< edge label for edge ops, vertex label otherwise

  [[nodiscard]] static constexpr GraphUpdate insert_edge(VertexId u, VertexId v,
                                                         Label elabel = 0) noexcept {
    return {UpdateOp::kInsertEdge, u, v, elabel};
  }
  [[nodiscard]] static constexpr GraphUpdate remove_edge(VertexId u, VertexId v,
                                                         Label elabel = 0) noexcept {
    return {UpdateOp::kRemoveEdge, u, v, elabel};
  }
  [[nodiscard]] static constexpr GraphUpdate insert_vertex(VertexId id,
                                                           Label vlabel) noexcept {
    return {UpdateOp::kInsertVertex, id, kInvalidVertex, vlabel};
  }
  [[nodiscard]] static constexpr GraphUpdate remove_vertex(VertexId id) noexcept {
    return {UpdateOp::kRemoveVertex, id, kInvalidVertex, 0};
  }

  [[nodiscard]] constexpr bool is_edge_op() const noexcept {
    return op == UpdateOp::kInsertEdge || op == UpdateOp::kRemoveEdge;
  }
  [[nodiscard]] constexpr bool is_insert() const noexcept {
    return op == UpdateOp::kInsertEdge || op == UpdateOp::kInsertVertex;
  }

  [[nodiscard]] friend constexpr bool operator==(const GraphUpdate&,
                                                 const GraphUpdate&) noexcept = default;
};

}  // namespace paracosm::graph
