// Structural statistics for data graphs: used to validate that the dataset
// stand-ins reproduce the characteristics the paper's effects depend on
// (degree distribution shape, label balance, local clustering).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/data_graph.hpp"
#include "util/rng.hpp"

namespace paracosm::graph {

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0;
  std::uint32_t p50 = 0;
  std::uint32_t p90 = 0;
  std::uint32_t p99 = 0;
  /// Simple heavy-tail indicator: max / mean.
  [[nodiscard]] double tail_ratio() const noexcept {
    return mean > 0 ? static_cast<double>(max) / mean : 0.0;
  }
};

/// Degree distribution over alive vertices.
[[nodiscard]] DegreeStats degree_stats(const DataGraph& g);

/// Vertex-label histogram (label -> count), alive vertices only.
[[nodiscard]] std::map<Label, std::uint32_t> label_histogram(const DataGraph& g);

/// Herfindahl concentration of the label histogram: Σ p_i². 1/|L| for a
/// uniform distribution, → 1 as one label dominates. This is exactly the
/// probability that two random vertices collide on labels — the quantity
/// behind the classifier's stage-1 effectiveness (paper §4.3).
[[nodiscard]] double label_concentration(const DataGraph& g);

/// Estimated average local clustering coefficient over `samples` random
/// alive vertices (deterministic in rng).
[[nodiscard]] double clustering_coefficient(const DataGraph& g, std::uint32_t samples,
                                            util::Rng& rng);

/// Number of connected components among alive vertices.
[[nodiscard]] std::uint32_t connected_components(const DataGraph& g);

/// Multi-line human-readable summary.
[[nodiscard]] std::string describe(const DataGraph& g, util::Rng& rng);

}  // namespace paracosm::graph
