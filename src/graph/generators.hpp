// Synthetic dataset generation and query extraction.
//
// The paper evaluates on Amazon, LiveJournal, LSBench and Orkut (Table 5).
// Those graphs are not redistributable inside this repository, so we generate
// scaled-down stand-ins that reproduce the properties the ParaCOSM results
// depend on: the vertex/edge label alphabet sizes and the average degree of
// each dataset (see DESIGN.md §2). Queries are extracted exactly as in the
// paper: random walks from random seed vertices, taking the induced subgraph.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"
#include "util/rng.hpp"

namespace paracosm::graph {

struct DatasetSpec {
  std::string name;
  std::uint32_t num_vertices = 1000;
  double avg_degree = 8.0;
  std::uint32_t num_vertex_labels = 4;
  std::uint32_t num_edge_labels = 1;

  /// Multiply vertex count (degree/labels are intensive quantities).
  [[nodiscard]] DatasetSpec scaled(double factor) const;
};

/// Table 5 stand-ins. `scale` multiplies the (already scaled-down) default
/// vertex counts; scale = 1 keeps every bench comfortably inside CI budgets.
[[nodiscard]] DatasetSpec amazon_spec(double scale = 1.0);
[[nodiscard]] DatasetSpec livejournal_spec(double scale = 1.0);
[[nodiscard]] DatasetSpec lsbench_spec(double scale = 1.0);
[[nodiscard]] DatasetSpec orkut_spec(double scale = 1.0);
[[nodiscard]] std::vector<DatasetSpec> all_dataset_specs(double scale = 1.0);
[[nodiscard]] std::optional<DatasetSpec> dataset_spec_by_name(const std::string& name,
                                                              double scale = 1.0);

/// Preferential-attachment graph (Barabási–Albert flavour) with uniform
/// vertex/edge labels: heavy-tailed degrees like the real social networks.
[[nodiscard]] DataGraph generate_power_law(const DatasetSpec& spec, util::Rng& rng);

/// Uniform random graph (used by tests for unbiased structure).
[[nodiscard]] DataGraph generate_erdos_renyi(std::uint32_t num_vertices,
                                             std::uint64_t num_edges,
                                             std::uint32_t num_vertex_labels,
                                             std::uint32_t num_edge_labels,
                                             util::Rng& rng);

struct QueryExtractOptions {
  /// Start walks at a random endpoint of a random edge (probability
  /// proportional to degree) instead of a uniform vertex. Hub-anchored
  /// queries are what long random walks on the full-size graphs produce,
  /// and they drive the search-cost growth with query size.
  bool degree_biased_seed = false;
  /// Reject extracted queries with fewer edges (0 = trees allowed).
  std::uint32_t min_edges = 0;
};

/// Extract a connected query of `size` vertices by random walk + induced
/// subgraph. Returns nullopt if the walk cannot reach `size` distinct
/// vertices (tiny or fragmented graphs).
[[nodiscard]] std::optional<QueryGraph> extract_query(const DataGraph& g,
                                                      std::uint32_t size,
                                                      util::Rng& rng,
                                                      const QueryExtractOptions& opts = {});

/// Extract `count` queries (retrying failed walks up to a bounded number of
/// attempts); may return fewer on pathological graphs.
[[nodiscard]] std::vector<QueryGraph> extract_queries(
    const DataGraph& g, std::uint32_t size, std::uint32_t count, util::Rng& rng,
    const QueryExtractOptions& opts = {});

/// The evaluation protocol of Sun et al. (followed by the paper): remove a
/// random `fraction` of edges from `g` and return them as a shuffled
/// insertion stream.
[[nodiscard]] std::vector<GraphUpdate> make_insert_stream(DataGraph& g, double fraction,
                                                          util::Rng& rng);

/// Insertions as above plus re-deletion of a random `delete_fraction` of the
/// inserted edges appended at the tail — exercises negative matches.
[[nodiscard]] std::vector<GraphUpdate> make_mixed_stream(DataGraph& g,
                                                         double insert_fraction,
                                                         double delete_fraction,
                                                         util::Rng& rng);

}  // namespace paracosm::graph
