// Query graph Q: a small, immutable, connected labeled pattern.
//
// Beyond plain adjacency the query graph precomputes the pruning metadata the
// CSM algorithms share: per-vertex neighbor-label-frequency (NLF) signatures
// and the set of (label(u), label(v), elabel) triples of its edges — the
// first stage of ParaCOSM's update type classifier.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/nlf_signature.hpp"
#include "graph/types.hpp"

namespace paracosm::graph {

class QueryGraph {
 public:
  QueryGraph() = default;

  /// Build from explicit vertex labels and edges. Throws std::invalid_argument
  /// on self-loops, duplicate edges, or out-of-range endpoints.
  QueryGraph(std::vector<Label> vertex_labels, std::vector<Edge> edges);

  [[nodiscard]] std::uint32_t num_vertices() const noexcept {
    return static_cast<std::uint32_t>(labels_.size());
  }
  [[nodiscard]] std::uint32_t num_edges() const noexcept {
    return static_cast<std::uint32_t>(edges_.size());
  }

  [[nodiscard]] Label label(VertexId u) const noexcept { return labels_[u]; }
  [[nodiscard]] std::uint32_t degree(VertexId u) const noexcept {
    return static_cast<std::uint32_t>(adj_[u].size());
  }
  [[nodiscard]] std::span<const Neighbor> neighbors(VertexId u) const noexcept {
    return adj_[u];
  }
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;
  /// Label of edge (u,v), or nullopt if absent.
  [[nodiscard]] std::optional<Label> edge_label(VertexId u, VertexId v) const noexcept;

  /// True iff the pattern is connected (queries must be; generators ensure it).
  [[nodiscard]] bool connected() const;

  /// Number of query-vertex neighbors of `u` carrying vertex label `l`
  /// (the NLF signature used by degree/NLF filters).
  [[nodiscard]] std::uint32_t nlf(VertexId u, Label l) const noexcept;

  /// u's full NLF as a compact (label, count) vector sorted by label — lets
  /// filters iterate distinct labels once instead of re-counting per edge.
  [[nodiscard]] std::span<const std::pair<Label, std::uint32_t>> nlf_items(
      VertexId u) const noexcept {
    return nlf_[u];
  }
  /// Packed 64-bit NLF signature of `u` (see nlf_signature.hpp); a data
  /// vertex can only match `u` if its signature covers this one.
  [[nodiscard]] NlfSig nlf_signature(VertexId u) const noexcept { return sig_[u]; }

  /// True iff some query edge has this (endpoint label, endpoint label, edge
  /// label) triple in either orientation — classifier stage 1.
  [[nodiscard]] bool label_triple_exists(Label lu, Label lv, Label le) const noexcept;

  /// Query edges (in both orientations) whose label triple matches the data
  /// edge (lu, lv, le): pairs (u1, u2) with label(u1)==lu, label(u2)==lv.
  /// When `ignore_edge_labels`, `le` is not constrained (CaLiG mode).
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> matching_edges(
      Label lu, Label lv, Label le, bool ignore_edge_labels = false) const;

  /// Human-readable description (for logs and examples).
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Label> labels_;
  std::vector<std::vector<Neighbor>> adj_;
  std::vector<Edge> edges_;
  // nlf_[u]: (vertex label, count) among u's neighbors, sorted by label.
  std::vector<std::vector<std::pair<Label, std::uint32_t>>> nlf_;
  // sig_[u]: packed NLF signature of u.
  std::vector<NlfSig> sig_;
  // Packed (lu, lv, le) triples for O(1) stage-1 classification.
  std::unordered_set<std::uint64_t> triples_;

  [[nodiscard]] static std::uint64_t pack_triple(Label lu, Label lv, Label le) noexcept;
};

}  // namespace paracosm::graph
