#include "graph/data_graph.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/numa_alloc.hpp"

namespace paracosm::graph {

namespace {

/// First index in nbrs[lo, hi) (sorted by id) whose id is >= v: exponential
/// probe from the segment front, then binary search inside the bracketed
/// window. O(log distance) for hits near the front, O(log |segment|) worst
/// case — the galloping consistency check of the backtracking hot path.
[[nodiscard]] std::uint32_t gallop_find(const std::vector<Neighbor>& nbrs,
                                        std::uint32_t lo, std::uint32_t hi,
                                        VertexId v) noexcept {
  if (lo >= hi || nbrs[lo].v >= v) return lo;
  std::uint64_t bound = 1;
  while (lo + bound < hi && nbrs[lo + bound].v < v) bound <<= 1;
  auto left = lo + static_cast<std::uint32_t>(bound >> 1);
  auto right = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(hi, static_cast<std::uint64_t>(lo) + bound));
  while (left < right) {
    const std::uint32_t mid = left + (right - left) / 2;
    if (nbrs[mid].v < v)
      left = mid + 1;
    else
      right = mid;
  }
  return left;
}

}  // namespace

DataGraph::DataGraph(const DataGraph& other)
    : vertices_(other.vertices_),
      by_label_(other.by_label_),
      num_edges_(other.num_edges_.load(std::memory_order_relaxed)),
      alive_(other.alive_) {}

DataGraph& DataGraph::operator=(const DataGraph& other) {
  if (this != &other) {
    vertices_ = other.vertices_;
    by_label_ = other.by_label_;
    num_edges_.store(other.num_edges_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    alive_ = other.alive_;
  }
  return *this;
}

VertexId DataGraph::add_vertex(Label label) {
  const auto id = static_cast<VertexId>(vertices_.size());
  add_vertex_with_id(id, label);
  return id;
}

void DataGraph::add_vertex_with_id(VertexId id, Label label) {
  if (id >= vertices_.size()) {
    vertices_.resize(id + 1);
    // Vertex table: read by every worker during enumeration. Interleave +
    // hugepage advice once per capacity jump (best-effort, DESIGN.md §10).
    if (vertices_.capacity() != numa_advised_cap_) {
      util::numa::place_shared(vertices_.data(),
                               vertices_.capacity() * sizeof(VertexRec));
      numa_advised_cap_ = vertices_.capacity();
    }
  }
  VertexRec& rec = vertices_[id];
  if (rec.alive && rec.label == label) return;
  if (rec.alive) {
    // Relabel: reposition this vertex inside each neighbor's
    // label-partitioned adjacency (their segment for us moves), then move
    // the bucket entry. Our own adjacency is unaffected — neighbor labels
    // did not change.
    const Label old_label = rec.label;
    const std::vector<Neighbor> saved = rec.nbrs;
    for (const Neighbor& nb : saved) erase_directed(nb.v, id);
    rec.label = label;
    for (const Neighbor& nb : saved) insert_directed(nb.v, id, nb.elabel);
    bucket_retire(old_label);
  } else {
    rec.alive = true;
    rec.label = label;
    ++alive_;
  }
  bucket_push(id, label);
}

std::size_t DataGraph::remove_vertex(VertexId id) {
  if (!has_vertex(id)) return 0;
  VertexRec& rec = vertices_[id];
  const std::size_t removed = rec.nbrs.size();
  for (const Neighbor& nb : rec.nbrs) erase_directed(nb.v, id);
  num_edges_.fetch_sub(removed, std::memory_order_relaxed);
  rec.nbrs.clear();
  rec.segs.clear();
  rec.sig = 0;
  rec.alive = false;
  --alive_;
  bucket_retire(rec.label);
  return removed;
}

bool DataGraph::add_edge(VertexId u, VertexId v, Label elabel) {
  if (u == v || !has_vertex(u) || !has_vertex(v)) return false;
  // insert_directed detects duplicates itself; no separate has_edge probe.
  if (!insert_directed(u, v, elabel)) return false;
  insert_directed(v, u, elabel);
  num_edges_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<Label> DataGraph::remove_edge(VertexId u, VertexId v) {
  if (!has_vertex(u) || !has_vertex(v)) return std::nullopt;
  const auto label = erase_directed(u, v);
  if (!label) return std::nullopt;
  erase_directed(v, u);
  num_edges_.fetch_sub(1, std::memory_order_relaxed);
  return label;
}

MutationStatus DataGraph::apply_checked(const GraphUpdate& upd) {
  switch (upd.op) {
    case UpdateOp::kInsertEdge:
    case UpdateOp::kRemoveEdge: {
      if (upd.u > kMaxVertexId || upd.v > kMaxVertexId ||
          upd.label > kMaxLabel) {
        return MutationStatus::kInvalidId;
      }
      if (upd.u == upd.v) return MutationStatus::kSelfLoop;
      if (!has_vertex(upd.u) || !has_vertex(upd.v))
        return MutationStatus::kMissingVertex;
      if (upd.op == UpdateOp::kInsertEdge) {
        return add_edge(upd.u, upd.v, upd.label) ? MutationStatus::kApplied
                                                 : MutationStatus::kDuplicateEdge;
      }
      return remove_edge(upd.u, upd.v) ? MutationStatus::kApplied
                                       : MutationStatus::kMissingEdge;
    }
    case UpdateOp::kInsertVertex: {
      if (upd.u > kMaxVertexId || upd.label > kMaxLabel)
        return MutationStatus::kInvalidId;
      if (has_vertex(upd.u) && label(upd.u) == upd.label)
        return MutationStatus::kVertexExists;
      add_vertex_with_id(upd.u, upd.label);
      return MutationStatus::kApplied;
    }
    case UpdateOp::kRemoveVertex:
      if (upd.u > kMaxVertexId) return MutationStatus::kInvalidId;
      if (!has_vertex(upd.u)) return MutationStatus::kMissingVertex;
      remove_vertex(upd.u);
      return MutationStatus::kApplied;
  }
  return MutationStatus::kInvalidId;
}

bool DataGraph::apply(const GraphUpdate& upd) {
  switch (upd.op) {
    case UpdateOp::kInsertEdge:
      return add_edge(upd.u, upd.v, upd.label);
    case UpdateOp::kRemoveEdge:
      return remove_edge(upd.u, upd.v).has_value();
    case UpdateOp::kInsertVertex:
      add_vertex_with_id(upd.u, upd.label);
      return true;
    case UpdateOp::kRemoveVertex:
      if (!has_vertex(upd.u)) return false;
      remove_vertex(upd.u);
      return true;
  }
  return false;
}

bool DataGraph::has_edge(VertexId u, VertexId v) const noexcept {
  return edge_label(u, v).has_value();
}

std::optional<Label> DataGraph::edge_label(VertexId u, VertexId v) const noexcept {
  if (u >= vertices_.size() || v >= vertices_.size()) return std::nullopt;
  return edge_label(u, v, vertices_[v].label);
}

std::optional<Label> DataGraph::edge_label(VertexId u, VertexId v,
                                           Label v_label) const noexcept {
  const VertexRec& rec = vertices_[u];
  const auto [lo, hi] = seg_range(rec, v_label);
  const std::uint32_t idx = gallop_find(rec.nbrs, lo, hi, v);
  if (idx >= hi || rec.nbrs[idx].v != v) return std::nullopt;
  return rec.nbrs[idx].elabel;
}

std::span<const Neighbor> DataGraph::neighbors_with_label(VertexId u,
                                                          Label l) const noexcept {
  if (u >= vertices_.size()) return {};
  const VertexRec& rec = vertices_[u];
  const auto [lo, hi] = seg_range(rec, l);
  return {rec.nbrs.data() + lo, static_cast<std::size_t>(hi - lo)};
}

std::uint32_t DataGraph::nlf_recount(VertexId v, Label l) const noexcept {
  std::uint32_t count = 0;
  for (const Neighbor& nb : vertices_[v].nbrs)
    if (vertices_[nb.v].label == l) ++count;
  return count;
}

std::vector<VertexId> DataGraph::vertices_with_label(Label l) const {
  std::vector<VertexId> out;
  out.reserve(count_vertices_with_label(l));
  for (const VertexId id : label_view(l)) out.push_back(id);
  return out;
}

std::vector<Edge> DataGraph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < vertices_.size(); ++u) {
    if (!vertices_[u].alive) continue;
    for (const Neighbor& nb : vertices_[u].nbrs)
      if (u < nb.v) out.push_back({u, nb.v, nb.elabel});
  }
  return out;
}

std::uint32_t DataGraph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (const VertexRec& rec : vertices_)
    if (rec.alive) best = std::max(best, static_cast<std::uint32_t>(rec.nbrs.size()));
  return best;
}

std::uint32_t DataGraph::num_vertex_labels() const {
  std::unordered_set<Label> labels;
  for (const VertexRec& rec : vertices_)
    if (rec.alive) labels.insert(rec.label);
  return static_cast<std::uint32_t>(labels.size());
}

std::uint32_t DataGraph::num_edge_labels() const {
  std::unordered_set<Label> labels;
  for (const VertexRec& rec : vertices_)
    if (rec.alive)
      for (const Neighbor& nb : rec.nbrs) labels.insert(nb.elabel);
  return static_cast<std::uint32_t>(labels.size());
}

bool DataGraph::same_structure(const DataGraph& other) const {
  if (vertex_capacity() != other.vertex_capacity()) return false;
  if (num_edges() != other.num_edges()) return false;
  for (VertexId u = 0; u < vertices_.size(); ++u) {
    const VertexRec& a = vertices_[u];
    const VertexRec& b = other.vertices_[u];
    if (a.alive != b.alive) return false;
    if (!a.alive) continue;
    if (a.label != b.label) return false;
    if (a.nbrs.size() != b.nbrs.size()) return false;
    // The (label, id) sort is canonical given equal labels, so element-wise
    // comparison is order-insensitive structural equality.
    for (std::size_t i = 0; i < a.nbrs.size(); ++i)
      if (a.nbrs[i].v != b.nbrs[i].v || a.nbrs[i].elabel != b.nbrs[i].elabel)
        return false;
  }
  return true;
}

void DataGraph::bucket_push(VertexId id, Label l) {
  if (l >= by_label_.size()) by_label_.resize(l + 1);
  LabelBucket& b = by_label_[l];
  vertices_[id].bucket_pos = static_cast<std::uint32_t>(b.ids.size());
  b.ids.push_back(id);
}

void DataGraph::bucket_retire(Label l) {
  // Caller has already made the entry stale (vertex died, relabeled, or was
  // revived elsewhere) — the live test below must see the new state.
  LabelBucket& b = by_label_[l];
  ++b.dead;
  if (static_cast<std::size_t>(b.dead) * 2 > b.ids.size()) {
    std::uint32_t out = 0;
    for (std::uint32_t i = 0; i < b.ids.size(); ++i) {
      if (!bucket_entry_live(l, i)) continue;
      const VertexId id = b.ids[i];
      b.ids[out] = id;
      vertices_[id].bucket_pos = out;
      ++out;
    }
    b.ids.resize(out);
    b.dead = 0;
  }
}

std::pair<std::uint32_t, std::uint32_t> DataGraph::seg_range(const VertexRec& rec,
                                                             Label l) const noexcept {
  const auto it = std::lower_bound(
      rec.segs.begin(), rec.segs.end(), l,
      [](const LabelSeg& s, Label lbl) noexcept { return s.label < lbl; });
  const std::uint32_t lo = it == rec.segs.begin() ? 0 : std::prev(it)->end;
  if (it == rec.segs.end() || it->label != l) return {lo, lo};
  return {lo, it->end};
}

bool DataGraph::insert_directed(VertexId from, VertexId to, Label elabel) {
  VertexRec& rec = vertices_[from];
  const Label tl = vertices_[to].label;
  auto dit = std::lower_bound(
      rec.segs.begin(), rec.segs.end(), tl,
      [](const LabelSeg& s, Label lbl) noexcept { return s.label < lbl; });
  const std::uint32_t lo =
      dit == rec.segs.begin() ? 0 : std::prev(dit)->end;
  const std::size_t dpos = static_cast<std::size_t>(dit - rec.segs.begin());
  if (dit == rec.segs.end() || dit->label != tl)
    rec.segs.insert(dit, LabelSeg{tl, lo});
  const std::uint32_t hi = rec.segs[dpos].end;
  const std::uint32_t idx = gallop_find(rec.nbrs, lo, hi, to);
  if (idx < hi && rec.nbrs[idx].v == to) return false;
  rec.nbrs.insert(rec.nbrs.begin() + idx, Neighbor{to, elabel});
  for (std::size_t i = dpos; i < rec.segs.size(); ++i) ++rec.segs[i].end;
  lane_refresh(rec, tl);
  return true;
}

std::optional<Label> DataGraph::erase_directed(VertexId from, VertexId to) noexcept {
  VertexRec& rec = vertices_[from];
  const Label tl = vertices_[to].label;
  const auto dit = std::lower_bound(
      rec.segs.begin(), rec.segs.end(), tl,
      [](const LabelSeg& s, Label lbl) noexcept { return s.label < lbl; });
  if (dit == rec.segs.end() || dit->label != tl) return std::nullopt;
  const std::uint32_t lo = dit == rec.segs.begin() ? 0 : std::prev(dit)->end;
  const std::uint32_t hi = dit->end;
  const std::uint32_t idx = gallop_find(rec.nbrs, lo, hi, to);
  if (idx >= hi || rec.nbrs[idx].v != to) return std::nullopt;
  const Label elabel = rec.nbrs[idx].elabel;
  rec.nbrs.erase(rec.nbrs.begin() + idx);
  for (auto it = dit; it != rec.segs.end(); ++it) --it->end;
  // An emptied segment stays in the directory (width 0): labels recur in
  // streams, so keeping it spares a memmove pair per add/remove cycle. The
  // directory stays bounded by the number of distinct labels ever adjacent.
  lane_refresh(rec, tl);
  return elabel;
}

void DataGraph::lane_refresh(VertexRec& rec, Label neighbor_label) noexcept {
  const unsigned lane = nlf_sig_lane(neighbor_label);
  std::uint32_t total = 0;
  std::uint32_t prev = 0;
  for (const LabelSeg& s : rec.segs) {
    if (nlf_sig_lane(s.label) == lane) total += s.end - prev;
    prev = s.end;
  }
  rec.sig = nlf_sig_with_lane(rec.sig, lane, total);
}

}  // namespace paracosm::graph
