#include "graph/data_graph.hpp"

#include <algorithm>
#include <unordered_set>

namespace paracosm::graph {

DataGraph::DataGraph(const DataGraph& other)
    : vertices_(other.vertices_),
      by_label_(other.by_label_),
      num_edges_(other.num_edges_.load(std::memory_order_relaxed)),
      alive_(other.alive_) {}

DataGraph& DataGraph::operator=(const DataGraph& other) {
  if (this != &other) {
    vertices_ = other.vertices_;
    by_label_ = other.by_label_;
    num_edges_.store(other.num_edges_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    alive_ = other.alive_;
  }
  return *this;
}

VertexId DataGraph::add_vertex(Label label) {
  const auto id = static_cast<VertexId>(vertices_.size());
  add_vertex_with_id(id, label);
  return id;
}

void DataGraph::add_vertex_with_id(VertexId id, Label label) {
  if (id >= vertices_.size()) vertices_.resize(id + 1);
  VertexRec& rec = vertices_[id];
  if (!rec.alive) {
    rec.alive = true;
    ++alive_;
  }
  rec.label = label;
  if (label >= by_label_.size()) by_label_.resize(label + 1);
  by_label_[label].push_back(id);
}

std::size_t DataGraph::remove_vertex(VertexId id) {
  if (!has_vertex(id)) return 0;
  VertexRec& rec = vertices_[id];
  const std::size_t removed = rec.nbrs.size();
  for (const Neighbor& nb : rec.nbrs) erase_directed(nb.v, id);
  num_edges_.fetch_sub(removed, std::memory_order_relaxed);
  rec.nbrs.clear();
  rec.alive = false;
  --alive_;
  auto& bucket = by_label_[rec.label];
  bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  return removed;
}

bool DataGraph::add_edge(VertexId u, VertexId v, Label elabel) {
  if (u == v || !has_vertex(u) || !has_vertex(v)) return false;
  if (has_edge(u, v)) return false;
  insert_directed(u, v, elabel);
  insert_directed(v, u, elabel);
  num_edges_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<Label> DataGraph::remove_edge(VertexId u, VertexId v) {
  if (!has_vertex(u) || !has_vertex(v)) return std::nullopt;
  const auto label = edge_label(u, v);
  if (!label) return std::nullopt;
  erase_directed(u, v);
  erase_directed(v, u);
  num_edges_.fetch_sub(1, std::memory_order_relaxed);
  return label;
}

bool DataGraph::apply(const GraphUpdate& upd) {
  switch (upd.op) {
    case UpdateOp::kInsertEdge:
      return add_edge(upd.u, upd.v, upd.label);
    case UpdateOp::kRemoveEdge:
      return remove_edge(upd.u, upd.v).has_value();
    case UpdateOp::kInsertVertex:
      add_vertex_with_id(upd.u, upd.label);
      return true;
    case UpdateOp::kRemoveVertex:
      if (!has_vertex(upd.u)) return false;
      remove_vertex(upd.u);
      return true;
  }
  return false;
}

bool DataGraph::has_edge(VertexId u, VertexId v) const noexcept {
  return edge_label(u, v).has_value();
}

std::optional<Label> DataGraph::edge_label(VertexId u, VertexId v) const noexcept {
  if (u >= vertices_.size()) return std::nullopt;
  const auto& list = vertices_[u].nbrs;
  const auto it = std::lower_bound(list.begin(), list.end(), Neighbor{v, 0});
  if (it == list.end() || it->v != v) return std::nullopt;
  return it->elabel;
}

std::uint32_t DataGraph::nlf(VertexId v, Label l) const noexcept {
  std::uint32_t count = 0;
  for (const Neighbor& nb : vertices_[v].nbrs)
    if (vertices_[nb.v].label == l) ++count;
  return count;
}

std::vector<VertexId> DataGraph::vertices_with_label(Label l) const {
  std::vector<VertexId> out;
  if (l >= by_label_.size()) return out;
  for (const VertexId id : by_label_[l])
    if (vertices_[id].alive && vertices_[id].label == l) out.push_back(id);
  return out;
}

std::vector<Edge> DataGraph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < vertices_.size(); ++u) {
    if (!vertices_[u].alive) continue;
    for (const Neighbor& nb : vertices_[u].nbrs)
      if (u < nb.v) out.push_back({u, nb.v, nb.elabel});
  }
  return out;
}

std::uint32_t DataGraph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (const VertexRec& rec : vertices_)
    if (rec.alive) best = std::max(best, static_cast<std::uint32_t>(rec.nbrs.size()));
  return best;
}

std::uint32_t DataGraph::num_vertex_labels() const {
  std::unordered_set<Label> labels;
  for (const VertexRec& rec : vertices_)
    if (rec.alive) labels.insert(rec.label);
  return static_cast<std::uint32_t>(labels.size());
}

std::uint32_t DataGraph::num_edge_labels() const {
  std::unordered_set<Label> labels;
  for (const VertexRec& rec : vertices_)
    if (rec.alive)
      for (const Neighbor& nb : rec.nbrs) labels.insert(nb.elabel);
  return static_cast<std::uint32_t>(labels.size());
}

bool DataGraph::same_structure(const DataGraph& other) const {
  if (vertex_capacity() != other.vertex_capacity()) return false;
  if (num_edges() != other.num_edges()) return false;
  for (VertexId u = 0; u < vertices_.size(); ++u) {
    const VertexRec& a = vertices_[u];
    const VertexRec& b = other.vertices_[u];
    if (a.alive != b.alive) return false;
    if (!a.alive) continue;
    if (a.label != b.label) return false;
    if (a.nbrs.size() != b.nbrs.size()) return false;
    for (std::size_t i = 0; i < a.nbrs.size(); ++i)
      if (a.nbrs[i].v != b.nbrs[i].v || a.nbrs[i].elabel != b.nbrs[i].elabel)
        return false;
  }
  return true;
}

bool DataGraph::insert_directed(VertexId from, VertexId to, Label elabel) {
  auto& list = vertices_[from].nbrs;
  const auto it = std::lower_bound(list.begin(), list.end(), Neighbor{to, 0});
  if (it != list.end() && it->v == to) return false;
  list.insert(it, Neighbor{to, elabel});
  return true;
}

bool DataGraph::erase_directed(VertexId from, VertexId to) noexcept {
  auto& list = vertices_[from].nbrs;
  const auto it = std::lower_bound(list.begin(), list.end(), Neighbor{to, 0});
  if (it == list.end() || it->v != to) return false;
  list.erase(it);
  return true;
}

}  // namespace paracosm::graph
