#include "graph/graph_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace paracosm::graph {

namespace {

/// Accumulation cap for fields with no semantic range (degree hints): large
/// enough to never reject real data, small enough that `value * 10 + digit`
/// cannot overflow.
inline constexpr std::uint64_t kMaxFieldValue = 1000000000000000000ULL;

/// Report one bad line: collect-and-skip when a collector is present, throw
/// otherwise. Returns only in collect mode.
void report(std::vector<ParseError>* errors, std::string reason,
            std::size_t line_no, const std::string& line) {
  ParseError err{line_no, line, std::move(reason)};
  if (errors == nullptr) throw ParseException(std::move(err));
  errors->push_back(std::move(err));
}

/// Tokenizer over one line: whitespace-split fields, consumed left to right.
/// Numeric fields are parsed strictly — digits only (no sign, no 0x, no
/// trailing junk) with an explicit cap, because istream's `uint >>` silently
/// wraps negatives and saturates overflow, both of which then index dense
/// vectors downstream.
class FieldReader {
 public:
  explicit FieldReader(const std::string& line) : ss_(line) {}

  /// Next whitespace-delimited token, or empty when the line is exhausted.
  [[nodiscard]] std::string next() {
    std::string tok;
    ss_ >> tok;
    return tok;
  }

  [[nodiscard]] bool exhausted() {
    std::string rest;
    return !(ss_ >> rest);
  }

  /// Parse the next field as an unsigned integer in [0, cap]. On failure
  /// sets `reason` and returns nullopt. `what` names the field for the
  /// error message.
  [[nodiscard]] std::optional<std::uint64_t> field(const char* what,
                                                   std::uint64_t cap,
                                                   std::string& reason) {
    const std::string tok = next();
    if (tok.empty()) {
      reason = std::string("missing ") + what;
      return std::nullopt;
    }
    std::uint64_t value = 0;
    for (const char c : tok) {
      if (c < '0' || c > '9') {
        reason = std::string("non-numeric ") + what + " '" + tok + "'";
        return std::nullopt;
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      if (value > cap) {
        reason = std::string(what) + " '" + tok + "' out of range (max " +
                 std::to_string(cap) + ")";
        return std::nullopt;
      }
    }
    return value;
  }

 private:
  std::istringstream ss_;
};

struct ParsedGraph {
  std::vector<std::pair<VertexId, Label>> vertices;
  std::vector<Edge> edges;
};

[[nodiscard]] ParsedGraph parse_graph(std::istream& in,
                                      std::vector<ParseError>* errors) {
  ParsedGraph out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%' || line[0] == 't') continue;
    FieldReader fields(line);
    const std::string tag = fields.next();
    std::string reason;
    if (tag == "v") {
      // "v <id> <vlabel> [degree]" — the degree hint is validated but unused.
      const auto id = fields.field("vertex id", kMaxVertexId, reason);
      const auto label = id ? fields.field("vertex label", kMaxLabel, reason)
                            : std::nullopt;
      if (!label) {
        report(errors, reason.empty() ? "malformed vertex" : reason, line_no, line);
        continue;
      }
      if (const std::string tok = fields.next(); !tok.empty()) {
        FieldReader one(tok);
        if (!one.field("degree hint", kMaxFieldValue, reason)) {
          report(errors, reason, line_no, line);
          continue;
        }
      }
      if (!fields.exhausted()) {
        report(errors, "trailing garbage after vertex record", line_no, line);
        continue;
      }
      out.vertices.emplace_back(static_cast<VertexId>(*id),
                                static_cast<Label>(*label));
    } else if (tag == "e") {
      const auto u = fields.field("vertex id", kMaxVertexId, reason);
      const auto v = u ? fields.field("vertex id", kMaxVertexId, reason)
                       : std::nullopt;
      if (!v) {
        report(errors, reason.empty() ? "malformed edge" : reason, line_no, line);
        continue;
      }
      std::uint64_t elabel = 0;
      if (const std::string tok = fields.next(); !tok.empty()) {
        FieldReader one(tok);
        const auto parsed = one.field("edge label", kMaxLabel, reason);
        if (!parsed) {
          report(errors, reason, line_no, line);
          continue;
        }
        elabel = *parsed;
      }
      if (!fields.exhausted()) {
        report(errors, "trailing garbage after edge record", line_no, line);
        continue;
      }
      out.edges.push_back({static_cast<VertexId>(*u), static_cast<VertexId>(*v),
                           static_cast<Label>(elabel)});
    } else {
      report(errors, "unknown record tag '" + tag + "'", line_no, line);
    }
  }
  return out;
}

template <typename T, typename Loader>
[[nodiscard]] T load_from_file(const std::string& path, Loader loader,
                               std::vector<ParseError>* errors) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("graph_io: cannot open " + path);
  return loader(in, errors);
}

}  // namespace

DataGraph load_data_graph(std::istream& in, std::vector<ParseError>* errors) {
  const ParsedGraph parsed = parse_graph(in, errors);
  DataGraph g;
  for (const auto& [id, label] : parsed.vertices) g.add_vertex_with_id(id, label);
  for (const Edge& e : parsed.edges) g.add_edge(e.u, e.v, e.elabel);
  return g;
}

QueryGraph load_query_graph(std::istream& in, std::vector<ParseError>* errors) {
  const ParsedGraph parsed = parse_graph(in, errors);
  std::vector<Label> labels;
  for (const auto& [id, label] : parsed.vertices) {
    if (id >= labels.size()) labels.resize(id + 1);
    labels[id] = label;
  }
  return QueryGraph(std::move(labels), parsed.edges);
}

std::vector<GraphUpdate> load_update_stream(std::istream& in,
                                            std::vector<ParseError>* errors) {
  std::vector<GraphUpdate> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    FieldReader fields(line);
    std::string tag = fields.next();
    bool insert = true;
    if (tag.size() == 2 && (tag[0] == '+' || tag[0] == '-')) {
      insert = tag[0] == '+';
      tag.erase(0, 1);
    }
    std::string reason;
    if (tag == "e") {
      const auto u = fields.field("vertex id", kMaxVertexId, reason);
      const auto v = u ? fields.field("vertex id", kMaxVertexId, reason)
                       : std::nullopt;
      if (!v) {
        report(errors, reason.empty() ? "malformed edge update" : reason,
               line_no, line);
        continue;
      }
      std::uint64_t elabel = 0;
      if (const std::string tok = fields.next(); !tok.empty()) {
        FieldReader one(tok);
        const auto parsed = one.field("edge label", kMaxLabel, reason);
        if (!parsed) {
          report(errors, reason, line_no, line);
          continue;
        }
        elabel = *parsed;
      }
      if (!fields.exhausted()) {
        report(errors, "trailing garbage after edge update", line_no, line);
        continue;
      }
      out.push_back(insert
                        ? GraphUpdate::insert_edge(static_cast<VertexId>(*u),
                                                   static_cast<VertexId>(*v),
                                                   static_cast<Label>(elabel))
                        : GraphUpdate::remove_edge(static_cast<VertexId>(*u),
                                                   static_cast<VertexId>(*v),
                                                   static_cast<Label>(elabel)));
    } else if (tag == "v") {
      const auto id = fields.field("vertex id", kMaxVertexId, reason);
      if (!id) {
        report(errors, reason.empty() ? "malformed vertex update" : reason,
               line_no, line);
        continue;
      }
      std::uint64_t label = 0;
      if (const std::string tok = fields.next(); !tok.empty()) {
        FieldReader one(tok);
        const auto parsed = one.field("vertex label", kMaxLabel, reason);
        if (!parsed) {
          report(errors, reason, line_no, line);
          continue;
        }
        label = *parsed;
      }
      if (!fields.exhausted()) {
        report(errors, "trailing garbage after vertex update", line_no, line);
        continue;
      }
      out.push_back(insert ? GraphUpdate::insert_vertex(static_cast<VertexId>(*id),
                                                        static_cast<Label>(label))
                           : GraphUpdate::remove_vertex(static_cast<VertexId>(*id)));
    } else {
      report(errors, "unknown update tag '" + tag + "'", line_no, line);
    }
  }
  return out;
}

DataGraph load_data_graph_file(const std::string& path,
                               std::vector<ParseError>* errors) {
  return load_from_file<DataGraph>(
      path, [](std::istream& in, std::vector<ParseError>* e) {
        return load_data_graph(in, e);
      },
      errors);
}
QueryGraph load_query_graph_file(const std::string& path,
                                 std::vector<ParseError>* errors) {
  return load_from_file<QueryGraph>(
      path, [](std::istream& in, std::vector<ParseError>* e) {
        return load_query_graph(in, e);
      },
      errors);
}
std::vector<GraphUpdate> load_update_stream_file(const std::string& path,
                                                 std::vector<ParseError>* errors) {
  return load_from_file<std::vector<GraphUpdate>>(
      path, [](std::istream& in, std::vector<ParseError>* e) {
        return load_update_stream(in, e);
      },
      errors);
}

void save_data_graph(const DataGraph& g, std::ostream& out) {
  for (VertexId u = 0; u < g.vertex_capacity(); ++u)
    if (g.has_vertex(u))
      out << "v " << u << ' ' << g.label(u) << ' ' << g.degree(u) << '\n';
  for (const Edge& e : g.edge_list())
    out << "e " << e.u << ' ' << e.v << ' ' << e.elabel << '\n';
}

void save_query_graph(const QueryGraph& q, std::ostream& out) {
  for (VertexId u = 0; u < q.num_vertices(); ++u)
    out << "v " << u << ' ' << q.label(u) << ' ' << q.degree(u) << '\n';
  for (const Edge& e : q.edges())
    out << "e " << e.u << ' ' << e.v << ' ' << e.elabel << '\n';
}

void save_update_stream(const std::vector<GraphUpdate>& stream, std::ostream& out) {
  for (const GraphUpdate& upd : stream) {
    const char sign = upd.is_insert() ? '+' : '-';
    if (upd.is_edge_op())
      out << sign << "e " << upd.u << ' ' << upd.v << ' ' << upd.label << '\n';
    else
      out << sign << "v " << upd.u << ' ' << upd.label << '\n';
  }
}

namespace {
template <typename Fn, typename T>
void save_to_file(const T& value, const std::string& path, Fn saver) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("graph_io: cannot open " + path);
  saver(value, out);
}
}  // namespace

void save_data_graph_file(const DataGraph& g, const std::string& path) {
  save_to_file(g, path, [](const DataGraph& x, std::ostream& o) { save_data_graph(x, o); });
}
void save_query_graph_file(const QueryGraph& q, const std::string& path) {
  save_to_file(q, path,
               [](const QueryGraph& x, std::ostream& o) { save_query_graph(x, o); });
}
void save_update_stream_file(const std::vector<GraphUpdate>& stream,
                             const std::string& path) {
  save_to_file(stream, path, [](const std::vector<GraphUpdate>& x, std::ostream& o) {
    save_update_stream(x, o);
  });
}

}  // namespace paracosm::graph
