#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace paracosm::graph {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t line_no,
                       const std::string& line) {
  throw std::runtime_error("graph_io: " + what + " at line " +
                           std::to_string(line_no) + ": '" + line + "'");
}

struct ParsedGraph {
  std::vector<std::pair<VertexId, Label>> vertices;
  std::vector<Edge> edges;
};

[[nodiscard]] ParsedGraph parse_graph(std::istream& in) {
  ParsedGraph out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%' || line[0] == 't') continue;
    std::istringstream ss(line);
    char tag = 0;
    ss >> tag;
    if (tag == 'v') {
      std::uint64_t id = 0, label = 0;
      if (!(ss >> id >> label)) fail("malformed vertex", line_no, line);
      out.vertices.emplace_back(static_cast<VertexId>(id), static_cast<Label>(label));
    } else if (tag == 'e') {
      std::uint64_t u = 0, v = 0, elabel = 0;
      if (!(ss >> u >> v)) fail("malformed edge", line_no, line);
      ss >> elabel;  // optional
      out.edges.push_back(
          {static_cast<VertexId>(u), static_cast<VertexId>(v), static_cast<Label>(elabel)});
    } else {
      fail("unknown record tag", line_no, line);
    }
  }
  return out;
}

template <typename T>
[[nodiscard]] T load_from_file(const std::string& path, T (*loader)(std::istream&)) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("graph_io: cannot open " + path);
  return loader(in);
}

}  // namespace

DataGraph load_data_graph(std::istream& in) {
  const ParsedGraph parsed = parse_graph(in);
  DataGraph g;
  for (const auto& [id, label] : parsed.vertices) g.add_vertex_with_id(id, label);
  for (const Edge& e : parsed.edges) g.add_edge(e.u, e.v, e.elabel);
  return g;
}

QueryGraph load_query_graph(std::istream& in) {
  const ParsedGraph parsed = parse_graph(in);
  std::vector<Label> labels;
  for (const auto& [id, label] : parsed.vertices) {
    if (id >= labels.size()) labels.resize(id + 1);
    labels[id] = label;
  }
  return QueryGraph(std::move(labels), parsed.edges);
}

std::vector<GraphUpdate> load_update_stream(std::istream& in) {
  std::vector<GraphUpdate> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    bool insert = true;
    if (tag.size() == 2 && (tag[0] == '+' || tag[0] == '-')) {
      insert = tag[0] == '+';
      tag.erase(0, 1);
    }
    if (tag == "e") {
      std::uint64_t u = 0, v = 0, elabel = 0;
      if (!(ss >> u >> v)) fail("malformed edge update", line_no, line);
      ss >> elabel;
      out.push_back(insert
                        ? GraphUpdate::insert_edge(static_cast<VertexId>(u),
                                                   static_cast<VertexId>(v),
                                                   static_cast<Label>(elabel))
                        : GraphUpdate::remove_edge(static_cast<VertexId>(u),
                                                   static_cast<VertexId>(v),
                                                   static_cast<Label>(elabel)));
    } else if (tag == "v") {
      std::uint64_t id = 0, label = 0;
      if (!(ss >> id)) fail("malformed vertex update", line_no, line);
      ss >> label;
      out.push_back(insert ? GraphUpdate::insert_vertex(static_cast<VertexId>(id),
                                                        static_cast<Label>(label))
                           : GraphUpdate::remove_vertex(static_cast<VertexId>(id)));
    } else {
      fail("unknown update tag", line_no, line);
    }
  }
  return out;
}

DataGraph load_data_graph_file(const std::string& path) {
  return load_from_file(path, load_data_graph);
}
QueryGraph load_query_graph_file(const std::string& path) {
  return load_from_file(path, load_query_graph);
}
std::vector<GraphUpdate> load_update_stream_file(const std::string& path) {
  return load_from_file(path, load_update_stream);
}

void save_data_graph(const DataGraph& g, std::ostream& out) {
  for (VertexId u = 0; u < g.vertex_capacity(); ++u)
    if (g.has_vertex(u))
      out << "v " << u << ' ' << g.label(u) << ' ' << g.degree(u) << '\n';
  for (const Edge& e : g.edge_list())
    out << "e " << e.u << ' ' << e.v << ' ' << e.elabel << '\n';
}

void save_query_graph(const QueryGraph& q, std::ostream& out) {
  for (VertexId u = 0; u < q.num_vertices(); ++u)
    out << "v " << u << ' ' << q.label(u) << ' ' << q.degree(u) << '\n';
  for (const Edge& e : q.edges())
    out << "e " << e.u << ' ' << e.v << ' ' << e.elabel << '\n';
}

void save_update_stream(const std::vector<GraphUpdate>& stream, std::ostream& out) {
  for (const GraphUpdate& upd : stream) {
    const char sign = upd.is_insert() ? '+' : '-';
    if (upd.is_edge_op())
      out << sign << "e " << upd.u << ' ' << upd.v << ' ' << upd.label << '\n';
    else
      out << sign << "v " << upd.u << ' ' << upd.label << '\n';
  }
}

namespace {
template <typename Fn, typename T>
void save_to_file(const T& value, const std::string& path, Fn saver) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("graph_io: cannot open " + path);
  saver(value, out);
}
}  // namespace

void save_data_graph_file(const DataGraph& g, const std::string& path) {
  save_to_file(g, path, [](const DataGraph& x, std::ostream& o) { save_data_graph(x, o); });
}
void save_query_graph_file(const QueryGraph& q, const std::string& path) {
  save_to_file(q, path,
               [](const QueryGraph& x, std::ostream& o) { save_query_graph(x, o); });
}
void save_update_stream_file(const std::vector<GraphUpdate>& stream,
                             const std::string& path) {
  save_to_file(stream, path, [](const std::vector<GraphUpdate>& x, std::ostream& o) {
    save_update_stream(x, o);
  });
}

}  // namespace paracosm::graph
