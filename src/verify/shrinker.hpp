// Failing-case minimizer (ddmin-style delta debugging over fuzz cases).
//
// Given a divergence found by the fuzzer, the shrinker greedily reduces the
// case while re-running ONLY the failing cell (same algorithm, lane and
// thread count — the cheapest predicate that still reproduces the bug):
//
//   1. truncate the stream right after the diverging update;
//   2. ddmin over the remaining updates (chunked removal, halving);
//   3. drop every query but the failing one;
//   4. drop query vertices while the pattern stays connected;
//   5. ddmin over the *initial graph's* edges;
//   6. collapse vertex and edge labels to 0.
//
// Each reduction is accepted only if the cell still diverges, so the output
// is a 1-minimal-ish repro — typically a handful of updates — suitable for
// direct inclusion as a regression test (repro.hpp serializes it).
#pragma once

#include "verify/fuzzer.hpp"

namespace paracosm::verify {

struct ShrinkOptions {
  std::uint32_t max_rounds = 4;  ///< full passes over the reduction steps
  std::uint32_t max_runs = 500;  ///< total predicate (cell re-run) budget
  bool check_mappings = true;    ///< must match how the divergence was found
  AlgorithmFactory factory;      ///< must match how the divergence was found
};

struct ShrinkResult {
  FuzzCase reduced;           ///< still diverging, hopefully much smaller
  Divergence divergence;      ///< the divergence as observed on `reduced`
  std::uint32_t predicate_runs = 0;
};

/// Minimize `c` with respect to the failing cell described by `d`.
/// Precondition: that cell actually diverges on `c`.
[[nodiscard]] ShrinkResult shrink(const FuzzCase& c, const Divergence& d,
                                  const ShrinkOptions& opts = {});

}  // namespace paracosm::verify
