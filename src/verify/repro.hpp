// Self-contained repro files for fuzzer findings.
//
// A repro bundles one fuzz case (graph + queries + stream, each section in
// the standard benchmark text format of graph_io.hpp) together with the
// failing-cell metadata, in a single human-diffable file:
//
//   # paracosm_fuzz repro v1
//   meta seed 42
//   meta algorithm turboflux
//   meta lane batch
//   meta threads 4
//   meta query 0
//   meta update 7
//   meta message delta count mismatch: ...
//   %graph
//   v 0 1
//   e 0 1 0
//   %query
//   v 0 1
//   ...
//   %stream
//   +e 0 2 0
//   %end
//
// `paracosm_fuzz --replay file` re-runs the recorded cell (or the full
// matrix when no cell is recorded), and the regression suite loads every
// file under tests/repros/ and asserts the divergence stays fixed.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "verify/fuzzer.hpp"

namespace paracosm::verify {

struct Repro {
  FuzzCase fuzz_case;
  /// Recorded failing cell; absent for hand-written regression cases that
  /// should be checked across the whole matrix.
  std::optional<Divergence> cell;
};

void save_repro(const Repro& r, std::ostream& out);
void save_repro_file(const Repro& r, const std::string& path);

/// Parse a repro file. Throws std::runtime_error on malformed input.
[[nodiscard]] Repro load_repro(std::istream& in);
[[nodiscard]] Repro load_repro_file(const std::string& path);

/// Re-check a repro: when a cell is recorded, only that cell runs; otherwise
/// the whole default matrix. Returns the divergences found (empty = fixed).
[[nodiscard]] std::vector<Divergence> check_repro(
    const Repro& r, const AlgorithmFactory& factory = {});

}  // namespace paracosm::verify
