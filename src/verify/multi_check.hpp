// Differential verification of the shared multi-query engine (ISSUE 6): for
// a fuzz case, register its queries (with duplicates, mixed algorithms) in
// one MultiQueryEngine and demand byte-identical per-query ΔM totals against
// N independent single-query SequentialEngine runs over private graph copies.
//
// The lanes:
//
//   static      — all queries registered up front; the shared engine at every
//                 thread count, plus the sharing-off baseline engine, must
//                 match the independent runs exactly. This is the acceptance
//                 property behind the scaling bench: sharing buys speed, never
//                 counts.
//   churn       — runtime registration: half the stream runs with the initial
//                 catalogue, then one query is added and one removed, then the
//                 rest runs. The added query's expectation is a sequential run
//                 that warms through the first half without counting (exactly
//                 "registered at the midpoint"); the removed query must keep
//                 its first-half totals and gain nothing after removal.
//
// Divergences reuse the fuzzer vocabulary (lane kBatch — the multi engine IS
// the batch executor) with a "multi[...]" message prefix, so paracosm_fuzz
// prints and persists them uniformly.
#pragma once

#include <cstdint>
#include <vector>

#include "verify/fuzzer.hpp"

namespace paracosm::verify {

struct MultiCheckOptions {
  std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  /// Register query 0 a second time under the same algorithm: the duplicate
  /// must land in the same evaluation class and report identical totals.
  bool duplicate_registration = true;
  bool runtime_churn = true;  ///< run the mid-stream add/remove lane
  bool stop_at_first = true;
};

/// Algorithms round-robined over the case's queries.
[[nodiscard]] std::vector<std::string_view> multi_check_algorithms();

[[nodiscard]] std::vector<Divergence> check_multi_case(
    const FuzzCase& c, const MultiCheckOptions& opts = {});

}  // namespace paracosm::verify
