#include "verify/fuzzer.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "control/control_plane.hpp"
#include "graph/generators.hpp"
#include "paracosm/paracosm.hpp"
#include "util/rng.hpp"

namespace paracosm::verify {

using graph::GraphUpdate;
using graph::Label;
using graph::VertexId;

namespace {

Label draw_vertex_label(util::Rng& rng, std::uint32_t num_labels, double skew) {
  // Head-heavy label distribution: label 0 absorbs `skew` of the mass.
  if (num_labels <= 1 || rng.chance(skew)) return 0;
  return static_cast<Label>(rng.range(1, num_labels - 1));
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed, const FuzzKnobs& knobs) {
  util::Rng rng(seed);
  FuzzCase c;
  c.seed = seed;

  const auto n = static_cast<std::uint32_t>(
      rng.range(knobs.min_vertices, knobs.max_vertices));
  const auto vl = static_cast<std::uint32_t>(
      rng.range(1, std::max<std::uint32_t>(1, knobs.max_vertex_labels)));
  const auto el = static_cast<std::uint32_t>(
      rng.range(1, std::max<std::uint32_t>(1, knobs.max_edge_labels)));
  const double avg_degree =
      knobs.min_avg_degree +
      rng.uniform() * (knobs.max_avg_degree - knobs.min_avg_degree);

  for (std::uint32_t i = 0; i < n; ++i)
    c.graph.add_vertex(draw_vertex_label(rng, vl, knobs.label_skew));

  // A few hub anchors concentrate degree (and later, ADS flip traffic).
  std::vector<VertexId> hubs;
  const std::uint32_t num_hubs = std::max<std::uint32_t>(1, n / 8);
  for (std::uint32_t i = 0; i < num_hubs; ++i)
    hubs.push_back(static_cast<VertexId>(rng.bounded(n)));

  const auto pick_endpoint = [&](util::Rng& r) -> VertexId {
    if (r.chance(knobs.hub_bias)) return hubs[r.bounded(hubs.size())];
    return static_cast<VertexId>(r.bounded(c.graph.vertex_capacity()));
  };

  const auto target_edges =
      static_cast<std::uint64_t>(static_cast<double>(n) * avg_degree / 2.0);
  for (std::uint64_t i = 0; i < target_edges; ++i) {
    const VertexId u = pick_endpoint(rng);
    const VertexId v = pick_endpoint(rng);
    if (u == v) continue;
    c.graph.add_edge(u, v, static_cast<Label>(rng.bounded(el)));
  }
  if (c.graph.num_edges() == 0 && n >= 2) c.graph.add_edge(0, 1, 0);

  // Queries: paper-style random-walk extraction, half of them hub-anchored.
  for (std::uint32_t i = 0; i < knobs.num_queries; ++i) {
    const auto size = static_cast<std::uint32_t>(
        rng.range(knobs.min_query_size, knobs.max_query_size));
    graph::QueryExtractOptions qopts;
    qopts.degree_biased_seed = (i % 2) == 1;
    if (auto q = graph::extract_query(c.graph, size, rng, qopts))
      c.queries.push_back(std::move(*q));
  }
  if (c.queries.empty()) {
    // Degenerate graph: fall back to a single-edge pattern over an existing
    // edge so every case still exercises the full pipeline.
    const auto edges = c.graph.edge_list();
    const graph::Edge e = edges.front();
    c.queries.emplace_back(
        std::vector<Label>{c.graph.label(e.u), c.graph.label(e.v)},
        std::vector<graph::Edge>{{0, 1, e.elabel}});
  }

  // Update stream, generated against a private mirror so deletes target real
  // edges and churn re-inserts exactly what was removed.
  graph::DataGraph mirror = c.graph;
  std::deque<graph::Edge> reinsert_queue;
  VertexId fresh_id = mirror.vertex_capacity();

  const auto random_existing_edge = [&]() -> std::optional<graph::Edge> {
    const auto edges = mirror.edge_list();
    if (edges.empty()) return std::nullopt;
    return edges[rng.bounded(edges.size())];
  };

  while (c.stream.size() < knobs.stream_length) {
    GraphUpdate upd;
    const double r = rng.uniform();
    if (r < knobs.invalid_rate) {
      // Structurally invalid ops (ISSUE 4 satellite): edge ops naming a
      // vertex that was never allocated, self-loops, and removes of unknown
      // vertices. Every engine must reject them identically
      // (DataGraph::apply_checked names the reason); the mirror.apply()
      // below is a no-op for all of them, so the oracle agrees by
      // construction.
      const auto ghost =
          static_cast<VertexId>(fresh_id + 64 + rng.bounded(64));
      const auto live = static_cast<VertexId>(rng.bounded(fresh_id));
      switch (rng.bounded(4)) {
        case 0: upd = GraphUpdate::insert_edge(live, ghost, 0); break;
        case 1: upd = GraphUpdate::remove_edge(ghost, live); break;
        case 2: upd = GraphUpdate::insert_edge(live, live, 0); break;
        default: upd = GraphUpdate::remove_vertex(ghost); break;
      }
    } else if (r < knobs.invalid_rate + knobs.vertex_op_rate) {
      if (rng.chance(0.5) || mirror.num_vertices() <= 4) {
        upd = GraphUpdate::insert_vertex(fresh_id++,
                                         draw_vertex_label(rng, vl, knobs.label_skew));
      } else {
        // Remove a random alive vertex (cascades incident-edge expiry).
        VertexId victim = static_cast<VertexId>(rng.bounded(mirror.vertex_capacity()));
        for (std::uint32_t tries = 0; tries < 8 && !mirror.has_vertex(victim); ++tries)
          victim = static_cast<VertexId>(rng.bounded(mirror.vertex_capacity()));
        if (!mirror.has_vertex(victim)) continue;
        upd = GraphUpdate::remove_vertex(victim);
      }
    } else if (r < knobs.invalid_rate + knobs.vertex_op_rate +
                       knobs.duplicate_rate) {
      // No-op attempts: duplicate insert of a live edge, or a delete of an
      // edge that is not there. Every engine must treat both as silent skips.
      if (const auto e = random_existing_edge(); e && rng.chance(0.7)) {
        upd = GraphUpdate::insert_edge(e->u, e->v, e->elabel);
      } else {
        const VertexId u = static_cast<VertexId>(rng.bounded(fresh_id));
        const VertexId v = static_cast<VertexId>(rng.bounded(fresh_id));
        if (u == v) continue;
        upd = mirror.has_edge(u, v) ? GraphUpdate::insert_edge(u, v, 0)
                                    : GraphUpdate::remove_edge(u, v);
      }
    } else if (rng.chance(knobs.delete_rate)) {
      const auto e = random_existing_edge();
      if (!e) continue;
      upd = GraphUpdate::remove_edge(e->u, e->v);
      if (rng.chance(knobs.churn)) reinsert_queue.push_back(*e);
    } else if (!reinsert_queue.empty() && rng.chance(0.6)) {
      const graph::Edge e = reinsert_queue.front();
      reinsert_queue.pop_front();
      upd = GraphUpdate::insert_edge(e.u, e.v, e.elabel);
    } else {
      const VertexId u = pick_endpoint(rng);
      const VertexId v = static_cast<VertexId>(rng.bounded(fresh_id));
      if (u == v) continue;
      upd = GraphUpdate::insert_edge(u, v, static_cast<Label>(rng.bounded(el)));
    }
    mirror.apply(upd);
    c.stream.push_back(upd);
  }
  return c;
}

std::string_view lane_name(Lane lane) noexcept {
  switch (lane) {
    case Lane::kSequential: return "sequential";
    case Lane::kInner: return "inner";
    case Lane::kBatch: return "batch";
  }
  return "?";
}

std::vector<LaneConfig> default_lane_matrix() {
  std::vector<LaneConfig> lanes{{Lane::kSequential, 1}};
  for (const unsigned t : {1u, 2u, 4u, 8u}) lanes.push_back({Lane::kInner, t});
  for (const unsigned t : {1u, 2u, 4u, 8u}) lanes.push_back({Lane::kBatch, t});
  return lanes;
}

std::vector<LaneConfig> backend_lane_matrix() {
  std::vector<LaneConfig> lanes = default_lane_matrix();
  for (const unsigned t : {1u, 2u, 4u, 8u})
    lanes.push_back({Lane::kBatch, t, engine::BatchBackendKind::kWide});
  return lanes;
}

std::vector<LaneConfig> control_lane_matrix() {
  std::vector<LaneConfig> lanes = default_lane_matrix();
  for (const unsigned t : {1u, 2u, 4u, 8u})
    lanes.push_back(
        {Lane::kBatch, t, engine::BatchBackendKind::kAuto, /*adaptive=*/true});
  return lanes;
}

std::string Divergence::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed << " alg=" << algorithm << " lane=" << lane_name(lane)
     << " threads=" << threads;
  if (lane == Lane::kBatch && backend != engine::BatchBackendKind::kCpu)
    os << " backend=" << engine::batch_backend_name(backend);
  if (adaptive) os << " adaptive";
  os << " query=" << query_index;
  if (update_index) os << " update=" << *update_index;
  os << ": " << message;
  return os.str();
}

std::vector<std::string_view> fuzz_algorithms() {
  return {"graphflow", "turboflux", "symbi", "calig",
          "newsp",     "rapidflow", "iedyn", "incisomatch"};
}

namespace {

std::unique_ptr<csm::CsmAlgorithm> default_factory(std::string_view name) {
  return csm::make_algorithm(name);
}

/// Forwards everything to the wrapped algorithm except ads_safe, which leaks
/// a deterministic subset of unsafe updates as safe (see fuzzer.hpp).
class ClassifierFaultAlgorithm final : public csm::CsmAlgorithm {
 public:
  ClassifierFaultAlgorithm(std::unique_ptr<csm::CsmAlgorithm> inner,
                           std::uint32_t leak_mod)
      : inner_(std::move(inner)), leak_mod_(std::max(1u, leak_mod)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return inner_->name();
  }
  [[nodiscard]] bool uses_edge_labels() const noexcept override {
    return inner_->uses_edge_labels();
  }
  [[nodiscard]] bool has_ads() const noexcept override { return inner_->has_ads(); }
  [[nodiscard]] std::uint64_t ads_checksum() const noexcept override {
    return inner_->ads_checksum();
  }
  void attach(const graph::QueryGraph& q, const graph::DataGraph& g) override {
    inner_->attach(q, g);
  }
  void on_edge_inserted(const GraphUpdate& upd) override {
    inner_->on_edge_inserted(upd);
  }
  void on_edge_removed(const GraphUpdate& upd) override {
    inner_->on_edge_removed(upd);
  }
  void on_vertex_added(VertexId id) override { inner_->on_vertex_added(id); }
  void on_vertex_removed(VertexId id) override { inner_->on_vertex_removed(id); }

  [[nodiscard]] bool ads_safe(const GraphUpdate& upd) const override {
    if (inner_->ads_safe(upd)) return true;
    // The injected bug: a hash-selected slice of genuinely unsafe updates is
    // declared safe, so the batch executor skips their enumeration.
    std::uint64_t h = (static_cast<std::uint64_t>(upd.u) << 32) ^ upd.v ^
                      (static_cast<std::uint64_t>(upd.op) << 17);
    h = splitmix64_once(h);
    return h % leak_mod_ == 0;
  }

  void seeds(const GraphUpdate& upd, std::vector<csm::SearchTask>& out) const override {
    inner_->seeds(upd, out);
  }
  void expand(const csm::SearchTask& task, csm::MatchSink& sink,
              csm::SplitHook* hook) const override {
    inner_->expand(task, sink, hook);
  }

 private:
  [[nodiscard]] static std::uint64_t splitmix64_once(std::uint64_t x) noexcept {
    std::uint64_t state = x;
    return util::splitmix64(state);
  }

  std::unique_ptr<csm::CsmAlgorithm> inner_;
  std::uint32_t leak_mod_;
};

engine::Config lane_engine_config(const LaneConfig& lane) {
  engine::Config cfg;
  cfg.threads = lane.threads;
  cfg.split_depth = 3;
  cfg.inner_parallelism = lane.lane != Lane::kSequential;
  cfg.inter_parallelism = lane.lane == Lane::kBatch;
  // kStrict keeps the batch executor provably equivalent to sequential
  // processing — the only mode a divergence is a bug in (kPaper may
  // legitimately act on stale snapshot verdicts).
  cfg.batch_mode = engine::BatchMode::kStrict;
  // kCpu/kWide pin every batch to one backend so a static-lane divergence
  // always names the backend that produced it; adaptive cells deliberately
  // run kAuto with the controller moving the cutoff under the router.
  cfg.batch_backend = lane.backend;
  if (lane.adaptive) cfg.invariant_stage = true;
  // The verification matrix oversubscribes a single machine with up to 8
  // worker threads; park immediately instead of spinning for throughput.
  cfg.queue_spin_iters = 1;
  cfg.pool_spin_iters = 1;
  return cfg;
}

/// Adaptive-cell control policy: decide every single batch (epoch_batches=1,
/// zero cooldowns) with a hysteresis band squeezed to [0.45, 0.55] so nearly
/// every epoch moves a knob, across tight ranges that keep the knobs inside
/// the regimes the small fuzz cases actually exercise. The point is maximum
/// schedule churn — retune between every batch — while the oracle pins ΔM.
control::ControlPlaneOptions fuzz_control_options() {
  control::ControlPlaneOptions o;
  o.epoch_batches = 1;
  o.batch_policy = {0.45, 0.55, 1, 16, 0, 2, 2.0, 0.25};
  o.split_policy = {0.45, 0.55, 0, 6, 0, 1, 1.0, 0.5};
  o.wide_policy = {0.45, 0.55, 0, 64, 0, 8, 1.5, 0.5};
  // Fuzz searches are micro-sized; disable the work floor so the raw
  // imbalance signal keeps the split knob churning through the whole range.
  o.min_search_busy_ns = 0;
  return o;
}

}  // namespace

AlgorithmFactory make_classifier_fault_factory(std::uint32_t leak_mod) {
  return [leak_mod](std::string_view name) -> std::unique_ptr<csm::CsmAlgorithm> {
    std::unique_ptr<csm::CsmAlgorithm> inner = csm::make_algorithm(name);
    if (!inner) return nullptr;
    return std::make_unique<ClassifierFaultAlgorithm>(std::move(inner), leak_mod);
  };
}

OracleTrace oracle_trace_for(const FuzzCase& c, std::uint32_t query_index,
                             bool use_edge_labels, bool strict) {
  return build_trace(c.queries[query_index], c.graph, c.stream, use_edge_labels,
                     strict);
}

std::optional<Divergence> check_cell(const FuzzCase& c, std::string_view algorithm,
                                     std::uint32_t query_index,
                                     const LaneConfig& lane,
                                     const OracleTrace& trace,
                                     const AlgorithmFactory& factory,
                                     bool check_mappings) {
  const AlgorithmFactory& make =
      factory ? factory : AlgorithmFactory(default_factory);
  std::unique_ptr<csm::CsmAlgorithm> alg = make(algorithm);
  if (!alg) return std::nullopt;

  // The recompute baseline is counting-only: it reports |ΔM| without
  // enumerating individual mappings, so only counts are reconciled.
  const bool mappings = check_mappings && algorithm != "incisomatch";

  graph::DataGraph g = c.graph;
  std::unique_ptr<engine::ParaCosm> pc;
  try {
    pc = std::make_unique<engine::ParaCosm>(*alg, c.queries[query_index], g,
                                            lane_engine_config(lane));
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // iedyn × cyclic query: out of the algorithm's domain
  }

  Divergence div;
  div.seed = c.seed;
  div.algorithm = std::string(algorithm);
  div.lane = lane.lane;
  div.threads = lane.threads;
  div.backend = lane.backend;
  div.adaptive = lane.adaptive;
  div.query_index = query_index;

  DeltaReconciler rec;
  pc->set_match_callback(
      [&rec](std::span<const Assignment> m) { rec.observe(m); });

  if (lane.lane == Lane::kBatch) {
    // Adaptive cells: a control plane over this engine's TuningView, stepping
    // once per batch. It must outlive process_stream (the engine posts
    // samples into it from the consumer thread).
    std::optional<control::ControlPlane> plane;
    if (lane.adaptive) {
      plane.emplace(pc->tuning(), fuzz_control_options());
      pc->attach_control(&*plane);
    }
    const engine::StreamResult res = pc->process_stream(c.stream);
    if (auto err =
            rec.reconcile_stream(trace, res.positive, res.negative, mappings)) {
      div.message = *err;
      return div;
    }
  } else {
    for (std::uint32_t i = 0; i < c.stream.size(); ++i) {
      rec.clear();
      const csm::UpdateOutcome out = pc->process(c.stream[i]);
      if (auto err =
              rec.reconcile(trace.deltas[i], out.positive, out.negative, mappings)) {
        div.update_index = i;
        div.message = *err;
        return div;
      }
    }
  }

  if (!g.same_structure(trace.final_graph)) {
    div.message = "final graph structure diverges from the oracle mirror";
    return div;
  }
  return std::nullopt;
}

std::vector<Divergence> check_case(const FuzzCase& c, const CheckOptions& opts) {
  std::vector<Divergence> out;
  const AlgorithmFactory& make =
      opts.factory ? opts.factory : AlgorithmFactory(default_factory);

  for (std::uint32_t qi = 0; qi < c.queries.size(); ++qi) {
    // One oracle trace per edge-label mode, shared by every algorithm/lane.
    std::optional<OracleTrace> traces[2];
    for (const std::string_view name : opts.algorithms) {
      const std::unique_ptr<csm::CsmAlgorithm> probe = make(name);
      if (!probe) continue;
      const bool el = probe->uses_edge_labels();
      std::optional<OracleTrace>& trace = traces[el ? 1 : 0];
      if (!trace) trace = oracle_trace_for(c, qi, el, opts.check_mappings);
      for (const LaneConfig& lane : opts.lanes) {
        if (auto div = check_cell(c, name, qi, lane, *trace, make,
                                  opts.check_mappings)) {
          out.push_back(std::move(*div));
          if (opts.stop_at_first) return out;
        }
      }
    }
  }
  return out;
}

}  // namespace paracosm::verify
