#include "verify/shard_check.hpp"

#include <filesystem>
#include <span>
#include <utility>

#include "csm/algorithm.hpp"
#include "graph/graph_io.hpp"
#include "paracosm/paracosm.hpp"
#include "shard/coordinator.hpp"
#include "shard/fault.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace paracosm::verify {

namespace {

/// The single-process ground truth: totals plus the fold_delta checksum over
/// the full per-update ΔM mapping stream.
struct OracleResult {
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  std::uint64_t checksum = util::kFnv1aOffset;
};

OracleResult run_oracle(const FuzzCase& c, const ShardCheckOptions& opts) {
  auto alg = csm::make_algorithm(opts.algorithm);
  graph::DataGraph g = c.graph;
  engine::Config config;
  config.threads = opts.threads;
  config.inter_parallelism = false;
  engine::ParaCosm pc(*alg, c.queries.front(), g, config);
  std::vector<csm::Assignment> buf;
  pc.set_match_callback([&buf](std::span<const csm::Assignment> m) {
    buf.insert(buf.end(), m.begin(), m.end());
  });
  OracleResult out;
  for (std::uint64_t seq = 0; seq < c.stream.size(); ++seq) {
    buf.clear();
    const csm::UpdateOutcome o = pc.process(c.stream[seq]);
    out.positive += o.positive;
    out.negative += o.negative;
    out.checksum = shard::fold_delta(out.checksum, seq, o.positive, o.negative, buf);
  }
  return out;
}

/// One coordinator run in a fresh scratch subdirectory (stale WAL/snapshot
/// files from a previous lane would trip the identity checks by design).
shard::CoordinatorReport run_coordinator(
    const FuzzCase& c, const ShardCheckOptions& opts,
    const std::string& lane_dir, const std::string& graph_path,
    const std::string& query_path, int kill_shard, std::int64_t kill_at,
    const shard::FaultPlan& fault, std::string& error) {
  std::filesystem::create_directories(lane_dir);
  shard::CoordinatorOptions copts;
  copts.sup.n_shards = opts.n_shards;
  copts.sup.graph_path = graph_path;
  copts.sup.query_path = query_path;
  copts.sup.algorithm = std::string(opts.algorithm);
  copts.sup.worker_threads = opts.threads;
  copts.sup.dir = lane_dir;
  copts.sup.kill_shard = kill_shard;
  copts.sup.kill_at = kill_at;
  copts.policy.attempt_timeout_ms = 2000;
  copts.fault = fault;

  shard::Coordinator coord(copts);
  if (!coord.start()) {
    error = coord.error();
    return coord.finish();
  }
  for (const graph::GraphUpdate& upd : c.stream)
    if (!coord.process(upd)) break;
  shard::CoordinatorReport report = coord.finish();
  error = report.error;
  return report;
}

Divergence make_div(const FuzzCase& c, const ShardCheckOptions& opts,
                    std::string message) {
  Divergence d;
  d.seed = c.seed;
  d.algorithm = std::string(opts.algorithm);
  d.threads = opts.threads;
  d.message = std::move(message);
  return d;
}

void compare(const FuzzCase& c, const ShardCheckOptions& opts,
             const std::string& lane, const OracleResult& oracle,
             const shard::CoordinatorReport& report, const std::string& error,
             std::vector<Divergence>& out) {
  if (!error.empty()) {
    out.push_back(make_div(c, opts, "shard " + lane + " lane: " + error));
    return;
  }
  if (report.processed != c.stream.size()) {
    out.push_back(make_div(
        c, opts,
        "shard " + lane + " lane: processed " +
            std::to_string(report.processed) + " of " +
            std::to_string(c.stream.size()) + " updates (updates dropped)"));
    return;
  }
  if (report.positive != oracle.positive || report.negative != oracle.negative ||
      report.delta_checksum != oracle.checksum) {
    out.push_back(make_div(
        c, opts,
        "shard " + lane + " lane: merged ΔM diverges from the "
        "single-process oracle (got +" + std::to_string(report.positive) +
        "/-" + std::to_string(report.negative) + " cksum " +
        std::to_string(report.delta_checksum) + ", oracle +" +
        std::to_string(oracle.positive) + "/-" +
        std::to_string(oracle.negative) + " cksum " +
        std::to_string(oracle.checksum) + ")"));
  }
}

}  // namespace

std::vector<Divergence> check_shard_case(const FuzzCase& c,
                                         const ShardCheckOptions& opts) {
  std::vector<Divergence> divs;
  if (c.queries.empty() || opts.n_shards == 0) return divs;

  const std::string base =
      opts.dir + "/shardcheck-" + std::to_string(c.seed);
  std::filesystem::create_directories(base);
  const std::string graph_path = base + "/case.graph";
  const std::string query_path = base + "/case.query";
  graph::save_data_graph_file(c.graph, graph_path);
  graph::save_query_graph_file(c.queries.front(), query_path);

  const OracleResult oracle = run_oracle(c, opts);

  // ---- clean lane
  {
    std::string error;
    const shard::CoordinatorReport report =
        run_coordinator(c, opts, base + "/clean", graph_path, query_path,
                        /*kill_shard=*/-1, /*kill_at=*/-1, {}, error);
    compare(c, opts, "clean", oracle, report, error, divs);
    if (!divs.empty()) return divs;
  }

  // ---- kill lane: seeded (shard, seq) cells
  if (!c.stream.empty()) {
    for (std::uint32_t k = 0; k < opts.kill_points; ++k) {
      std::uint64_t state = c.seed ^ (0x9e3779b97f4a7c15ULL * (k + 1));
      const std::uint64_t h = util::splitmix64(state);
      const int kill_shard = static_cast<int>(h % opts.n_shards);
      const auto kill_at =
          static_cast<std::int64_t>((h >> 32) % c.stream.size());
      std::string error;
      const shard::CoordinatorReport report = run_coordinator(
          c, opts, base + "/kill-" + std::to_string(k), graph_path, query_path,
          kill_shard, kill_at, {}, error);
      compare(c, opts,
              "kill(s" + std::to_string(kill_shard) + "@" +
                  std::to_string(kill_at) + ")",
              oracle, report, error, divs);
      if (divs.empty() && report.restarts == 0)
        divs.push_back(make_div(
            c, opts,
            "shard kill lane: armed kill at shard " +
                std::to_string(kill_shard) + " seq " + std::to_string(kill_at) +
                " never triggered a restart (fault plumbing broken)"));
      if (!divs.empty()) return divs;
    }
  }

  // ---- transport fault lane
  if (opts.transport_faults) {
    shard::FaultPlan plan;
    plan.seed = c.seed ^ 0xfau;
    plan.drop_rate = 0.04;
    plan.dup_rate = 0.03;
    plan.corrupt_rate = 0.04;
    plan.delay_rate = 0.05;
    plan.delay_us = 300;
    std::string error;
    const shard::CoordinatorReport report =
        run_coordinator(c, opts, base + "/transport", graph_path, query_path,
                        /*kill_shard=*/-1, /*kill_at=*/-1, plan, error);
    compare(c, opts, "transport", oracle, report, error, divs);
  }
  return divs;
}

}  // namespace paracosm::verify
