// Differential verification of sharded operation (DESIGN.md §12): the
// coordinator's merged ΔM over N supervised worker processes must be
// byte-identical — totals AND the flattened (seq, qv, dv) mapping stream,
// compared via the shared fold_delta checksum — to one single-process engine
// run over the same stream, under every fault lane:
//
//   clean      — no faults; the baseline sanity of the shard protocol.
//   kill       — seeded (shard, seq) kill cells: the chosen worker _Exit(137)s
//                with the record durable but unapplied; the supervisor must
//                restart it, WAL-replay, and resend the in-flight update —
//                delayed, never dropped, ΔM still byte-identical.
//   transport  — drop / duplicate / corrupt / delay frames at seeded rates;
//                the retry/backoff plane must absorb every one.
//
// These lanes spawn real child processes (paracosm_shard, resolved via
// $PARACOSM_SHARD_BIN or next to the current executable) and write scratch
// graph/stream/WAL files under `dir` — they are integration checks by
// design: the protocol, not a mock of it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/fuzzer.hpp"

namespace paracosm::verify {

struct ShardCheckOptions {
  std::string_view algorithm = "graphflow";
  unsigned threads = 2;
  std::uint32_t n_shards = 2;
  std::uint32_t kill_points = 3;  ///< seeded (shard, seq) kill cells per case
  bool transport_faults = true;   ///< add the drop/dup/corrupt/delay lane
  /// Scratch directory for case files and per-shard WAL/snapshots. Required:
  /// workers are separate processes and can only meet the case on disk.
  std::string dir = ".";
};

/// Run the shard fault matrix over `c` (query 0). Divergences come back in
/// the fuzzer's vocabulary so paracosm_fuzz prints/persists them uniformly.
[[nodiscard]] std::vector<Divergence> check_shard_case(
    const FuzzCase& c, const ShardCheckOptions& opts);

}  // namespace paracosm::verify
