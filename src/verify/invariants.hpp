// Metamorphic invariants: properties every (algorithm, executor, thread
// count) combination must satisfy on ANY input, checkable without an oracle.
//
//   * insert-then-delete no-op — inserting an edge and immediately deleting
//     it must return the match set (ΔM⁺ multiset == ΔM⁻ multiset), the data
//     graph, and the ADS checksum to their exact prior state;
//   * safe-update checksum invariance — every update the classifier marks
//     safe must leave the ADS checksum bit-identical and produce zero
//     matches (that is the definition of safe the batch executor relies on);
//   * thread permutation invariance — the match-callback stream of the
//     inner-update executor must be byte-identical across thread counts
//     (the delivery contract of csm/match.hpp).
//
// The same checksum invariant is compiled into the batch executor itself
// under the PARACOSM_VERIFY build flag (paracosm.cpp asserts it at every
// batch boundary, O(1) per batch thanks to the rolling checksums).
//
// Each checker returns a description of the first violation, or nullopt.
// Cells outside an algorithm's domain (iedyn × cyclic query) are skipped.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "verify/fuzzer.hpp"

namespace paracosm::verify {

[[nodiscard]] std::optional<std::string> check_insert_delete_noop(
    const FuzzCase& c, std::string_view algorithm, std::uint32_t query_index,
    std::uint32_t max_probes = 8);

[[nodiscard]] std::optional<std::string> check_safe_checksum_invariance(
    const FuzzCase& c, std::string_view algorithm, std::uint32_t query_index);

[[nodiscard]] std::optional<std::string> check_thread_permutation_invariance(
    const FuzzCase& c, std::string_view algorithm, std::uint32_t query_index,
    const std::vector<unsigned>& thread_counts = {1, 2, 4, 8});

/// All three invariants over every fuzz algorithm × query of the case.
/// Returns every violation found (empty = all hold).
[[nodiscard]] std::vector<std::string> check_all_invariants(const FuzzCase& c);

}  // namespace paracosm::verify
