// Deterministic stream fuzzer: seeded adversarial workloads cross-checked
// against the recompute oracle (oracle_mirror.hpp) and across every engine
// configuration.
//
// One 64-bit seed expands (splitmix64 -> xoshiro, util/rng.hpp) into a full
// (data graph, query set, update stream) triple; the same seed always
// reproduces the same case on every platform. The generator is deliberately
// adversarial where CSM implementations historically break:
//
//   * label skew      — a heavy head label inflates candidate sets and NLF
//                       counter traffic;
//   * hub vertices    — a few high-degree anchors concentrate flips and
//                       stress worklist propagation in the ADS;
//   * churn           — deleted edges are re-inserted later (flag flip-back,
//                       counter underflow bugs);
//   * duplicates      — inserts of existing edges and ops on dead vertices
//                       must be exact no-ops everywhere;
//   * vertex ops      — capacity growth and incident-edge cascades.
//
// check_case() runs the full verification matrix for one case: every
// requested algorithm × lane (sequential / inner-parallel / batch executor)
// × thread count, reconciling each cell against a cached oracle trace.
// check_cell() runs a single cell — the shrinker's predicate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "csm/algorithm.hpp"
#include "paracosm/config.hpp"
#include "verify/oracle_mirror.hpp"

namespace paracosm::verify {

/// Generation knobs; generate_case draws actual sizes per seed from these
/// ranges, so one knob set covers a spread of shapes.
struct FuzzKnobs {
  std::uint32_t min_vertices = 16;
  std::uint32_t max_vertices = 48;
  double min_avg_degree = 2.0;
  double max_avg_degree = 5.0;
  std::uint32_t max_vertex_labels = 4;  ///< drawn in [1, max]
  std::uint32_t max_edge_labels = 2;    ///< drawn in [1, max]
  std::uint32_t min_query_size = 3;
  std::uint32_t max_query_size = 5;
  std::uint32_t num_queries = 2;
  std::uint32_t stream_length = 48;

  // Adversarial dials (each a probability unless noted).
  double label_skew = 0.5;      ///< P(vertex takes the head label)
  double hub_bias = 0.35;       ///< P(an edge anchors at a hub vertex)
  double churn = 0.3;           ///< P(a delete is queued for re-insertion)
  double duplicate_rate = 0.1;  ///< P(emit an insert of an existing edge)
  double vertex_op_rate = 0.06; ///< P(emit a vertex insert/remove)
  double invalid_rate = 0.05;   ///< P(emit a structurally invalid op: ghost
                                ///  endpoints, self-loops, dead-vertex removes)
  double delete_rate = 0.35;    ///< P(a structural op is a deletion)
};

/// A self-contained fuzz workload. Everything needed to replay it is here
/// (and serializable via repro.hpp).
struct FuzzCase {
  std::uint64_t seed = 0;
  graph::DataGraph graph;
  std::vector<graph::QueryGraph> queries;
  std::vector<graph::GraphUpdate> stream;
};

[[nodiscard]] FuzzCase generate_case(std::uint64_t seed,
                                     const FuzzKnobs& knobs = {});

/// Which execution path a cell exercises.
enum class Lane : std::uint8_t {
  kSequential,  ///< inner + inter parallelism off (pure SequentialEngine path)
  kInner,       ///< inner-update executor (Algorithm 2), per-update
  kBatch,       ///< inter-update batch executor (Figure 6), strict mode
};

[[nodiscard]] std::string_view lane_name(Lane lane) noexcept;

struct LaneConfig {
  Lane lane = Lane::kSequential;
  unsigned threads = 1;
  /// Batch-classification backend (kBatch lanes only; ignored elsewhere).
  /// The differential `--backend` sweep runs each batch cell once per
  /// backend and demands identical ΔM from both (DESIGN.md §11).
  engine::BatchBackendKind backend = engine::BatchBackendKind::kCpu;
  /// Adaptive batch cells (kBatch lanes only): the engine runs with the
  /// invariant stage on, the kAuto backend router, and an attached
  /// ControlPlane tuned to decide as often as possible (one batch per
  /// epoch, zero cooldowns, tight knob ranges). The cell must still
  /// reconcile byte-identical ΔM against the same oracle trace as its
  /// static siblings — the correctness-invariance contract of DESIGN.md
  /// §13: tuning changes when/how work happens, never what is computed.
  bool adaptive = false;
};

/// The default verification matrix of the issue: sequential plus the two
/// parallel executors at 1/2/4/8 threads.
[[nodiscard]] std::vector<LaneConfig> default_lane_matrix();

/// The default matrix with every batch cell doubled: once on the cpu
/// backend, once on the wide (AVX2/SWAR) backend. Both cells reconcile
/// against the same oracle trace, so a verdict divergence between backends
/// surfaces as a ΔM divergence in exactly one of them.
[[nodiscard]] std::vector<LaneConfig> backend_lane_matrix();

/// The default matrix plus an adaptive twin of every batch cell: while the
/// static cell pins all knobs, the twin retunes split depth, batch cut and
/// the backend cutoff every single batch. Both reconcile against the same
/// oracle trace, so any controller decision that changes *results* (not just
/// schedule) surfaces as a ΔM divergence in the adaptive cell.
[[nodiscard]] std::vector<LaneConfig> control_lane_matrix();

/// One reconciliation failure, with everything needed to reproduce it.
struct Divergence {
  std::uint64_t seed = 0;
  std::string algorithm;
  Lane lane = Lane::kSequential;
  unsigned threads = 1;
  engine::BatchBackendKind backend = engine::BatchBackendKind::kCpu;
  bool adaptive = false;
  std::uint32_t query_index = 0;
  /// Update at which the divergence was detected (per-update lanes only;
  /// the batch lane reconciles whole-stream totals).
  std::optional<std::uint32_t> update_index;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Algorithm construction hook. The default forwards to csm::make_algorithm;
/// tests substitute fault-injecting wrappers to prove the harness catches
/// (and shrinks) real classifier bugs.
using AlgorithmFactory =
    std::function<std::unique_ptr<csm::CsmAlgorithm>(std::string_view)>;

/// All algorithms the fuzzer sweeps: the five incremental algorithms of the
/// default registry sweep plus rapidflow, iedyn (tree queries only — cells
/// with cyclic queries are skipped) and the incisomatch recompute baseline
/// (counting-only: mapping reconciliation is skipped, counts still checked).
[[nodiscard]] std::vector<std::string_view> fuzz_algorithms();

struct CheckOptions {
  std::vector<std::string_view> algorithms = fuzz_algorithms();
  std::vector<LaneConfig> lanes = default_lane_matrix();
  AlgorithmFactory factory;   ///< null -> csm::make_algorithm
  bool check_mappings = true; ///< strict delta reconciliation
  bool stop_at_first = true;  ///< return on the first divergence
};

/// Factory producing algorithms with a deliberately unsound filtering rule:
/// a deterministic (hash-selected, ~1/leak_mod) subset of updates the real
/// `ads_safe` rejects is leaked as "safe". The batch executor then applies
/// those updates without enumeration, silently dropping their ΔM — exactly
/// the class of classifier bug the harness exists to catch. Used by
/// `paracosm_fuzz --fault` and by the self-test that proves an injected bug
/// is caught and shrunk.
[[nodiscard]] AlgorithmFactory make_classifier_fault_factory(
    std::uint32_t leak_mod = 3);

/// Run one cell: `algorithm` on `c.queries[query_index]` through `lane`.
/// `trace` must be the oracle trace for that query in the algorithm's
/// edge-label mode. Returns the divergence, nullopt if the cell agrees (or
/// is skipped: unknown algorithm, iedyn × cyclic query).
[[nodiscard]] std::optional<Divergence> check_cell(
    const FuzzCase& c, std::string_view algorithm, std::uint32_t query_index,
    const LaneConfig& lane, const OracleTrace& trace,
    const AlgorithmFactory& factory = {}, bool check_mappings = true);

/// Build the oracle trace for one query of the case. `use_edge_labels`
/// must match the algorithm under test (CaLiG is edge-label-blind).
[[nodiscard]] OracleTrace oracle_trace_for(const FuzzCase& c,
                                           std::uint32_t query_index,
                                           bool use_edge_labels, bool strict);

/// Run the whole matrix over one case. Oracle traces are computed once per
/// (query, edge-label mode) and shared across all cells.
[[nodiscard]] std::vector<Divergence> check_case(const FuzzCase& c,
                                                 const CheckOptions& opts = {});

}  // namespace paracosm::verify
