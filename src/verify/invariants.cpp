#include "verify/invariants.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "paracosm/classifier.hpp"
#include "paracosm/paracosm.hpp"

namespace paracosm::verify {

using graph::GraphUpdate;

namespace {

engine::Config sequential_config() {
  engine::Config cfg;
  cfg.threads = 1;
  cfg.inner_parallelism = false;
  cfg.inter_parallelism = false;
  cfg.queue_spin_iters = 1;
  cfg.pool_spin_iters = 1;
  return cfg;
}

std::string cell_prefix(const FuzzCase& c, std::string_view algorithm,
                        std::uint32_t query_index) {
  std::ostringstream os;
  os << "seed=" << c.seed << " alg=" << algorithm << " query=" << query_index
     << ": ";
  return os.str();
}

}  // namespace

std::optional<std::string> check_insert_delete_noop(const FuzzCase& c,
                                                    std::string_view algorithm,
                                                    std::uint32_t query_index,
                                                    std::uint32_t max_probes) {
  std::unique_ptr<csm::CsmAlgorithm> alg = csm::make_algorithm(algorithm);
  if (!alg) return std::nullopt;
  graph::DataGraph g = c.graph;
  std::unique_ptr<engine::ParaCosm> pc;
  try {
    pc = std::make_unique<engine::ParaCosm>(*alg, c.queries[query_index], g,
                                            sequential_config());
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }

  std::vector<CanonMatch> observed;
  pc->set_match_callback([&observed](std::span<const Assignment> m) {
    observed.push_back(canonicalize(m));
  });

  // Probe with the insertions the case's own stream would perform (they are
  // guaranteed to be in-distribution for the graph).
  std::uint32_t probes = 0;
  for (const GraphUpdate& upd : c.stream) {
    if (probes >= max_probes) break;
    if (upd.op != graph::UpdateOp::kInsertEdge) continue;
    if (!g.has_vertex(upd.u) || !g.has_vertex(upd.v) || upd.u == upd.v ||
        g.has_edge(upd.u, upd.v))
      continue;
    ++probes;

    const std::uint64_t chk_before = alg->ads_checksum();
    const graph::DataGraph snapshot = g;

    observed.clear();
    const csm::UpdateOutcome ins = pc->process(upd);
    std::vector<CanonMatch> gained = std::move(observed);
    observed.clear();
    const csm::UpdateOutcome del =
        pc->process(GraphUpdate::remove_edge(upd.u, upd.v));
    std::vector<CanonMatch> lost = std::move(observed);

    const auto fail = [&](const std::string& what) {
      std::ostringstream os;
      os << cell_prefix(c, algorithm, query_index) << "insert(" << upd.u << ","
         << upd.v << ")+delete is not a no-op: " << what;
      return os.str();
    };
    if (ins.positive != del.negative) {
      std::ostringstream os;
      os << "gained " << ins.positive << " matches but lost " << del.negative;
      return fail(os.str());
    }
    std::sort(gained.begin(), gained.end(), canon_less);
    std::sort(lost.begin(), lost.end(), canon_less);
    if (gained != lost) return fail("ΔM⁺ and ΔM⁻ multisets differ");
    if (alg->ads_checksum() != chk_before)
      return fail("ADS checksum did not return to its prior value");
    if (!g.same_structure(snapshot)) return fail("data graph structure changed");
  }
  return std::nullopt;
}

std::optional<std::string> check_safe_checksum_invariance(
    const FuzzCase& c, std::string_view algorithm, std::uint32_t query_index) {
  std::unique_ptr<csm::CsmAlgorithm> alg = csm::make_algorithm(algorithm);
  if (!alg) return std::nullopt;
  graph::DataGraph g = c.graph;
  std::unique_ptr<engine::ParaCosm> pc;
  try {
    pc = std::make_unique<engine::ParaCosm>(*alg, c.queries[query_index], g,
                                            sequential_config());
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }

  const engine::UpdateClassifier classifier(c.queries[query_index], g, *alg);
  for (std::uint32_t i = 0; i < c.stream.size(); ++i) {
    const GraphUpdate& upd = c.stream[i];
    const engine::UpdateClass verdict = classifier.classify(upd);
    const std::uint64_t chk_before = alg->ads_checksum();
    const csm::UpdateOutcome out = pc->process(upd);
    if (!engine::is_safe(verdict)) continue;
    const auto fail = [&](std::string_view what) {
      std::ostringstream os;
      os << cell_prefix(c, algorithm, query_index) << "update " << i
         << " was classified safe but " << what;
      return os.str();
    };
    if (out.positive + out.negative != 0) return fail("produced matches");
    if (alg->ads_checksum() != chk_before) return fail("flipped ADS state");
  }
  return std::nullopt;
}

std::optional<std::string> check_thread_permutation_invariance(
    const FuzzCase& c, std::string_view algorithm, std::uint32_t query_index,
    const std::vector<unsigned>& thread_counts) {
  std::optional<std::string> reference;
  unsigned reference_threads = 0;

  for (const unsigned threads : thread_counts) {
    std::unique_ptr<csm::CsmAlgorithm> alg = csm::make_algorithm(algorithm);
    if (!alg) return std::nullopt;
    graph::DataGraph g = c.graph;
    engine::Config cfg = sequential_config();
    cfg.threads = threads;
    cfg.inner_parallelism = true;
    cfg.split_depth = 3;
    std::unique_ptr<engine::ParaCosm> pc;
    try {
      pc = std::make_unique<engine::ParaCosm>(*alg, c.queries[query_index], g, cfg);
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }

    // Serialize the full callback stream, update boundaries included; the
    // delivery contract promises this transcript is identical for every
    // thread count (per-worker buffers merged + sorted at quiescence).
    std::ostringstream transcript;
    pc->set_match_callback([&transcript](std::span<const Assignment> m) {
      for (const Assignment& a : m) transcript << a.qv << ':' << a.dv << ' ';
      transcript << ';';
    });
    for (const GraphUpdate& upd : c.stream) {
      pc->process(upd);
      transcript << '|';
    }

    std::string got = std::move(transcript).str();
    if (!reference) {
      reference = std::move(got);
      reference_threads = threads;
    } else if (got != *reference) {
      std::ostringstream os;
      os << cell_prefix(c, algorithm, query_index)
         << "match transcript differs between " << reference_threads << " and "
         << threads << " threads";
      return os.str();
    }
  }
  return std::nullopt;
}

std::vector<std::string> check_all_invariants(const FuzzCase& c) {
  std::vector<std::string> violations;
  const auto collect = [&violations](std::optional<std::string> v) {
    if (v) violations.push_back(std::move(*v));
  };
  for (std::uint32_t qi = 0; qi < c.queries.size(); ++qi) {
    for (const std::string_view name : fuzz_algorithms()) {
      collect(check_insert_delete_noop(c, name, qi));
      collect(check_safe_checksum_invariance(c, name, qi));
      collect(check_thread_permutation_invariance(c, name, qi));
    }
  }
  return violations;
}

}  // namespace paracosm::verify
