// Differential verification of the service layer's fault matrix (ISSUE 4):
// every resilience mechanism — crash recovery, deadline degradation, shed /
// degrade overload handling — must leave state (and, where applicable,
// counts) equal to OracleMirror ground truth.
//
// The lanes:
//
//   kNone          — plain service run (block policy): totals and final graph
//                    must be oracle-exact. Baseline sanity for the pipeline.
//   kCrashRecovery — for N seeded kill points k: build a WAL whose record k
//                    is appended but NOT applied (the crash window), half the
//                    time with a torn trailing half-record and/or a mid-run
//                    snapshot; recover_state must reproduce the prefix graph
//                    through k exactly (torn tail truncated, snapshot
//                    cross-checked via fresh attach), and the engine must
//                    then finish the remaining stream oracle-exactly.
//   kForcedTimeout — a seeded ≥`timeout_rate` slice of updates is forced
//                    over-budget. Degraded counts may be partial (only ever
//                    missing matches, never inventing them), but the final
//                    graph and a fresh-attach ADS checksum must be exact.
//   kShedIngest    — tiny ring + slow consumer at full submit rate: sheds
//                    must be delayed, never dropped — the effective applied
//                    order is a permutation of the stream and totals/final
//                    graph match an oracle replay of exactly that order.
//   kDegradeIngest — same pressure under kDegrade: count-only demotion must
//                    keep totals and state exact (only delivery is skipped).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/fuzzer.hpp"

namespace paracosm::verify {

enum class ServiceFault : std::uint8_t {
  kNone,
  kCrashRecovery,
  kForcedTimeout,
  kShedIngest,
  kDegradeIngest,
};

[[nodiscard]] std::string_view service_fault_name(ServiceFault f) noexcept;

/// All lanes, in matrix order.
[[nodiscard]] std::vector<ServiceFault> all_service_faults();

struct ServiceCheckOptions {
  std::string_view algorithm = "graphflow";
  unsigned threads = 4;
  ServiceFault fault = ServiceFault::kNone;

  std::uint32_t crash_points = 5;   ///< kCrashRecovery: seeded kill points
  double timeout_rate = 0.15;       ///< kForcedTimeout: forced share (≥10%)
  std::size_t queue_capacity = 4;   ///< overload lanes: tiny ring
  std::uint32_t slow_consumer_us = 200;  ///< overload lanes: per-item delay

  /// Scratch directory for WAL/snapshot files (kCrashRecovery); empty skips
  /// the on-disk half of that lane.
  std::string dir;
};

/// Run one service-fault lane over `c` (query 0). Returns divergences in the
/// fuzzer's vocabulary so paracosm_fuzz prints/persists them uniformly.
[[nodiscard]] std::vector<Divergence> check_service_case(
    const FuzzCase& c, const ServiceCheckOptions& opts);

}  // namespace paracosm::verify
