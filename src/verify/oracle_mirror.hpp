// Trusted recompute oracle for differential correctness testing.
//
// ParaCOSM's value proposition is that the parallel executors produce
// *exactly* the incremental deltas the sequential CSM algorithms would — and
// those, in turn, exactly the deltas a from-scratch recomputation defines
// (paper §2.1: ΔM is determined by the match sets before and after an
// update). OracleMirror is that definition made executable: it keeps a
// private mirror of the data graph, applies each update to it, re-enumerates
// ALL matches with plain backtracking (csm/oracle.hpp — no auxiliary
// structure, nothing shared with the engines under test) and diffs the match
// sets. The result is the per-update ground truth every engine configuration
// is reconciled against:
//
//   * counting mode      — |ΔM⁺| / |ΔM⁻| per update;
//   * strict mode        — the full canonical mapping sets that appeared and
//                          expired, so a wrong-but-count-preserving delta
//                          (one bogus match traded for one missed match)
//                          still diverges.
//
// DeltaReconciler is the engine-side half: it captures the match-callback
// stream and checks it against an OracleDelta (per update) or a whole trace
// (per stream, for the batch executor whose callbacks are not cut at update
// granularity from the outside).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "csm/match.hpp"
#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"

namespace paracosm::verify {

using csm::Assignment;

/// A match as a canonical value: its assignments sorted by query vertex.
/// Engines report mappings in their own matching order; canonicalization
/// makes mappings comparable across algorithms, executors and the oracle.
using CanonMatch = std::vector<Assignment>;

[[nodiscard]] CanonMatch canonicalize(std::span<const Assignment> mapping);
[[nodiscard]] bool canon_less(const CanonMatch& a, const CanonMatch& b) noexcept;
[[nodiscard]] std::string canon_to_string(const CanonMatch& m);

/// Ground-truth effect of one update: counts plus (in strict mode) the
/// canonical mappings that appeared/expired, each sorted by canon_less.
struct OracleDelta {
  std::uint64_t positive = 0;  ///< |ΔM⁺|
  std::uint64_t negative = 0;  ///< |ΔM⁻|
  std::vector<CanonMatch> appeared;
  std::vector<CanonMatch> expired;
  bool applied = false;  ///< whether the mirror graph changed at all
};

class OracleMirror {
 public:
  /// Snapshots `initial` into the private mirror and enumerates the initial
  /// match set. `strict` collects full mappings (delta-reconciliation mode);
  /// otherwise only counts are maintained.
  OracleMirror(const graph::QueryGraph& q, const graph::DataGraph& initial,
               bool use_edge_labels, bool strict = true);

  /// Apply `upd` to the mirror, re-enumerate from scratch, and return the
  /// diff against the pre-update match set.
  const OracleDelta& step(const graph::GraphUpdate& upd);

  [[nodiscard]] std::uint64_t match_count() const noexcept { return count_; }
  /// Current match set (strict mode only), sorted by canon_less.
  [[nodiscard]] const std::vector<CanonMatch>& matches() const noexcept {
    return matches_;
  }
  [[nodiscard]] const graph::DataGraph& graph() const noexcept { return mirror_; }
  [[nodiscard]] bool strict() const noexcept { return strict_; }

 private:
  [[nodiscard]] std::vector<CanonMatch> enumerate() const;

  const graph::QueryGraph& q_;
  graph::DataGraph mirror_;
  bool elabels_;
  bool strict_;
  std::uint64_t count_ = 0;
  std::vector<CanonMatch> matches_;  // sorted (strict mode)
  OracleDelta last_;
};

/// Whole-stream ground truth: one OracleDelta per update plus the final
/// mirror state. check_case/check_cell build one trace per (query,
/// edge-label mode) and reconcile every engine configuration against it.
struct OracleTrace {
  std::vector<OracleDelta> deltas;
  std::uint64_t total_positive = 0;
  std::uint64_t total_negative = 0;
  graph::DataGraph final_graph;
};

[[nodiscard]] OracleTrace build_trace(const graph::QueryGraph& q,
                                      const graph::DataGraph& initial,
                                      std::span<const graph::GraphUpdate> stream,
                                      bool use_edge_labels, bool strict = true);

/// Captures an engine's match-callback stream and reconciles it against the
/// oracle. One reconciler per engine run; `clear()` between updates when
/// reconciling at update granularity.
class DeltaReconciler {
 public:
  /// Match callback body: record one emitted mapping.
  void observe(std::span<const Assignment> mapping);
  void clear() noexcept { observed_.clear(); }
  [[nodiscard]] std::uint64_t observed_count() const noexcept {
    return observed_.size();
  }

  /// Per-update reconciliation: engine counts must equal the oracle's and —
  /// when `check_mappings` and the delta is strict — the observed multiset
  /// must equal appeared ∪ expired. Returns a description of the first
  /// discrepancy, or nullopt.
  [[nodiscard]] std::optional<std::string> reconcile(const OracleDelta& want,
                                                     std::uint64_t got_positive,
                                                     std::uint64_t got_negative,
                                                     bool check_mappings);

  /// Stream-level reconciliation against a whole trace (batch executor).
  [[nodiscard]] std::optional<std::string> reconcile_stream(
      const OracleTrace& want, std::uint64_t got_positive,
      std::uint64_t got_negative, bool check_mappings);

 private:
  std::vector<CanonMatch> observed_;
};

}  // namespace paracosm::verify
