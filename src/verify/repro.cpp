#include "verify/repro.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/graph_io.hpp"

namespace paracosm::verify {

namespace {

constexpr std::string_view kHeader = "# paracosm_fuzz repro v1";

std::optional<Lane> lane_from_name(std::string_view name) {
  if (name == "sequential") return Lane::kSequential;
  if (name == "inner") return Lane::kInner;
  if (name == "batch") return Lane::kBatch;
  return std::nullopt;
}

}  // namespace

void save_repro(const Repro& r, std::ostream& out) {
  out << kHeader << '\n';
  out << "meta seed " << r.fuzz_case.seed << '\n';
  if (r.cell) {
    out << "meta algorithm " << r.cell->algorithm << '\n';
    out << "meta lane " << lane_name(r.cell->lane) << '\n';
    out << "meta threads " << r.cell->threads << '\n';
    if (r.cell->backend != engine::BatchBackendKind::kCpu)
      out << "meta backend " << engine::batch_backend_name(r.cell->backend) << '\n';
    if (r.cell->adaptive) out << "meta adaptive 1\n";
    out << "meta query " << r.cell->query_index << '\n';
    if (r.cell->update_index) out << "meta update " << *r.cell->update_index << '\n';
    if (!r.cell->message.empty()) {
      // Keep the message single-line so the parser stays line-oriented.
      std::string msg = r.cell->message;
      for (char& ch : msg)
        if (ch == '\n' || ch == '\r') ch = ' ';
      out << "meta message " << msg << '\n';
    }
  }
  out << "%graph\n";
  graph::save_data_graph(r.fuzz_case.graph, out);
  for (const graph::QueryGraph& q : r.fuzz_case.queries) {
    out << "%query\n";
    graph::save_query_graph(q, out);
  }
  out << "%stream\n";
  graph::save_update_stream(r.fuzz_case.stream, out);
  out << "%end\n";
}

void save_repro_file(const Repro& r, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open repro file for writing: " + path);
  save_repro(r, out);
}

Repro load_repro(std::istream& in) {
  Repro r;
  Divergence cell;
  bool has_cell = false;

  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    throw std::runtime_error("repro: missing '# paracosm_fuzz repro v1' header");

  // Pass 1: metadata lines until the first % section.
  std::string section;
  while (std::getline(in, line)) {
    if (!line.empty() && line.front() == '%') {
      section = line;
      break;
    }
    std::istringstream ls(line);
    std::string tag, key;
    if (!(ls >> tag) || tag != "meta") continue;
    ls >> key;
    if (key == "seed") {
      ls >> r.fuzz_case.seed;
    } else if (key == "algorithm") {
      ls >> cell.algorithm;
      has_cell = true;
    } else if (key == "lane") {
      std::string name;
      ls >> name;
      const auto lane = lane_from_name(name);
      if (!lane) throw std::runtime_error("repro: unknown lane '" + name + "'");
      cell.lane = *lane;
    } else if (key == "threads") {
      ls >> cell.threads;
    } else if (key == "backend") {
      std::string name;
      ls >> name;
      const auto kind = engine::parse_batch_backend(name);
      if (!kind) throw std::runtime_error("repro: unknown backend '" + name + "'");
      cell.backend = *kind;
    } else if (key == "adaptive") {
      int flag = 0;
      ls >> flag;
      cell.adaptive = flag != 0;
    } else if (key == "query") {
      ls >> cell.query_index;
    } else if (key == "update") {
      std::uint32_t idx = 0;
      ls >> idx;
      cell.update_index = idx;
    } else if (key == "message") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());
      cell.message = rest;
    }
  }

  // Pass 2: % sections, each body handed to the matching graph_io loader.
  bool saw_graph = false, saw_stream = false, saw_end = false;
  while (!section.empty()) {
    std::ostringstream body;
    std::string next;
    while (std::getline(in, line)) {
      if (!line.empty() && line.front() == '%') {
        next = line;
        break;
      }
      body << line << '\n';
    }
    std::istringstream bs(body.str());
    if (section == "%graph") {
      r.fuzz_case.graph = graph::load_data_graph(bs);
      saw_graph = true;
    } else if (section == "%query") {
      r.fuzz_case.queries.push_back(graph::load_query_graph(bs));
    } else if (section == "%stream") {
      r.fuzz_case.stream = graph::load_update_stream(bs);
      saw_stream = true;
    } else if (section == "%end") {
      saw_end = true;
    } else {
      throw std::runtime_error("repro: unknown section '" + section + "'");
    }
    section = next;
    next.clear();
  }
  if (!saw_graph || !saw_stream || r.fuzz_case.queries.empty() || !saw_end)
    throw std::runtime_error("repro: incomplete file (need %graph, %query, %stream, %end)");

  if (has_cell) {
    cell.seed = r.fuzz_case.seed;
    r.cell = std::move(cell);
  }
  return r;
}

Repro load_repro_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open repro file: " + path);
  return load_repro(in);
}

std::vector<Divergence> check_repro(const Repro& r, const AlgorithmFactory& factory) {
  CheckOptions opts;
  opts.factory = factory;
  opts.stop_at_first = false;
  if (r.cell) {
    opts.algorithms = {};
    opts.algorithms.push_back(r.cell->algorithm);
    opts.lanes = {
        {r.cell->lane, r.cell->threads, r.cell->backend, r.cell->adaptive}};
  }
  return check_case(r.fuzz_case, opts);
}

}  // namespace paracosm::verify
