#include "verify/service_check.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <tuple>

#include "paracosm/paracosm.hpp"
#include "service/service.hpp"
#include "service/wal.hpp"
#include "util/rng.hpp"
#include "verify/oracle_mirror.hpp"

namespace paracosm::verify {

namespace {

engine::Config service_engine_config(unsigned threads) {
  engine::Config cfg;
  cfg.threads = threads;
  cfg.split_depth = 3;
  cfg.inner_parallelism = threads > 1;
  cfg.inter_parallelism = false;
  cfg.queue_spin_iters = 1;
  cfg.pool_spin_iters = 1;
  return cfg;
}

Divergence make_div(const FuzzCase& c, const ServiceCheckOptions& opts,
                    std::string message) {
  Divergence d;
  d.seed = c.seed;
  d.algorithm = std::string(opts.algorithm);
  d.lane = Lane::kInner;
  d.threads = opts.threads;
  d.query_index = 0;
  d.message = "service/" + std::string(service_fault_name(opts.fault)) + ": " +
              std::move(message);
  return d;
}

[[nodiscard]] std::tuple<std::uint8_t, std::uint32_t, std::uint32_t,
                         std::uint32_t>
update_key(const graph::GraphUpdate& u) noexcept {
  return {static_cast<std::uint8_t>(u.op), u.u, u.v, u.label};
}

/// Multiset equality of two update sequences (order-insensitive).
[[nodiscard]] bool same_updates(std::vector<graph::GraphUpdate> a,
                                std::vector<graph::GraphUpdate> b) {
  if (a.size() != b.size()) return false;
  const auto less = [](const graph::GraphUpdate& x, const graph::GraphUpdate& y) {
    return update_key(x) < update_key(y);
  };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  return a == b;
}

/// Fresh-attach ADS checksum on `g` — the recovery/degradation cross-check:
/// whatever the run did, the surviving ADS must equal one rebuilt offline.
[[nodiscard]] std::uint64_t fresh_ads_checksum(std::string_view algorithm,
                                               const graph::QueryGraph& q,
                                               const graph::DataGraph& g) {
  const auto alg = csm::make_algorithm(algorithm);
  alg->attach(q, g);
  return alg->ads_checksum();
}

/// Run the whole stream through a StreamService and reconcile the report
/// against an oracle replay of the *effective* applied order. `expect_exact`
/// demands equal totals; the forced-timeout lane relaxes it to ≤ (degraded
/// searches only ever lose matches, never invent them).
std::vector<Divergence> run_service_lane(const FuzzCase& c,
                                         const ServiceCheckOptions& opts,
                                         const service::ServiceOptions& sopts,
                                         const service::FaultHooks& hooks,
                                         bool expect_exact,
                                         bool expect_order_preserved) {
  std::vector<Divergence> out;
  const auto alg = csm::make_algorithm(opts.algorithm);
  if (!alg) return out;
  const graph::QueryGraph& q = c.queries.front();

  graph::DataGraph g = c.graph;
  std::unique_ptr<engine::ParaCosm> pc;
  try {
    pc = std::make_unique<engine::ParaCosm>(*alg, q, g,
                                            service_engine_config(opts.threads));
  } catch (const std::invalid_argument&) {
    return out;  // query outside the algorithm's domain
  }

  service::ServiceReport report;
  {
    service::StreamService svc(*pc, sopts, hooks);
    for (const graph::GraphUpdate& upd : c.stream) (void)svc.submit(upd);
    report = svc.finish();
  }

  if (!report.error.empty()) {
    out.push_back(make_div(c, opts, "consumer error: " + report.error));
    return out;
  }
  if (report.stats.processed != c.stream.size()) {
    out.push_back(make_div(
        c, opts,
        "processed " + std::to_string(report.stats.processed) + " of " +
            std::to_string(c.stream.size()) + " updates (drops are forbidden)"));
    return out;
  }
  if (!same_updates(report.applied_order, c.stream)) {
    out.push_back(make_div(c, opts,
                           "applied order is not a permutation of the stream"));
    return out;
  }
  if (expect_order_preserved && report.applied_order != c.stream) {
    out.push_back(make_div(c, opts, "applied order was unexpectedly reordered"));
    return out;
  }

  // Ground truth over the order the service actually applied (shed replays
  // legally reorder; the oracle must judge what happened, not what was sent).
  const bool el = alg->uses_edge_labels();
  const OracleTrace trace =
      build_trace(q, c.graph, report.applied_order, el, /*strict=*/false);

  if (expect_exact) {
    if (report.positive != trace.total_positive ||
        report.negative != trace.total_negative) {
      std::ostringstream os;
      os << "totals diverge: got +" << report.positive << "/-"
         << report.negative << ", oracle +" << trace.total_positive << "/-"
         << trace.total_negative;
      out.push_back(make_div(c, opts, os.str()));
    }
  } else {
    if (report.positive > trace.total_positive ||
        report.negative > trace.total_negative) {
      std::ostringstream os;
      os << "degraded run invented matches: got +" << report.positive << "/-"
         << report.negative << ", oracle +" << trace.total_positive << "/-"
         << trace.total_negative;
      out.push_back(make_div(c, opts, os.str()));
    }
  }
  if (!g.same_structure(trace.final_graph)) {
    out.push_back(make_div(c, opts,
                           "final graph diverges from the oracle mirror"));
  }
  if (alg->ads_checksum() != fresh_ads_checksum(opts.algorithm, q, g)) {
    out.push_back(make_div(
        c, opts, "surviving ADS checksum differs from a fresh attach"));
  }
  return out;
}

std::vector<Divergence> check_crash_recovery(const FuzzCase& c,
                                             const ServiceCheckOptions& opts) {
  std::vector<Divergence> out;
  if (opts.dir.empty() || c.stream.empty()) return out;
  const auto alg = csm::make_algorithm(opts.algorithm);
  if (!alg) return out;
  const graph::QueryGraph& q = c.queries.front();
  const bool el = alg->uses_edge_labels();

  util::Rng rng(c.seed ^ 0xc4a5ffULL);
  for (std::uint32_t point = 0; point < opts.crash_points; ++point) {
    const std::uint32_t k =
        static_cast<std::uint32_t>(rng.bounded(c.stream.size()));
    const std::string wal_path =
        opts.dir + "/crash_" + std::to_string(point) + ".wal";
    const std::string snap_path =
        opts.dir + "/crash_" + std::to_string(point) + ".snap";

    // Build the crashed-process disk image: records 0..k durable, but the
    // engine only applied 0..k-1 — the append-before-apply redo window.
    graph::DataGraph expect = c.graph;
    {
      service::WalWriter w(wal_path, /*truncate=*/true);
      for (std::uint32_t i = 0; i <= k; ++i) {
        (void)w.append(c.stream[i]);
        expect.apply(c.stream[i]);  // ground truth includes record k
      }
      w.flush();
    }
    const bool torn = rng.chance(0.5);
    if (torn) {
      // Crash mid-append of record k+1: a partial record past the good tail.
      std::ofstream f(wal_path, std::ios::binary | std::ios::app);
      const char junk[13] = {0x7f, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                             0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c};
      f.write(junk, sizeof junk);
    }

    const bool snap = k > 0 && rng.chance(0.5);
    if (snap) {
      const auto s = static_cast<std::uint32_t>(rng.bounded(k));
      graph::DataGraph snap_graph = c.graph;
      for (std::uint32_t i = 0; i < s; ++i) snap_graph.apply(c.stream[i]);
      service::write_snapshot(
          snap_path, snap_graph,
          {s, fresh_ads_checksum(opts.algorithm, q, snap_graph),
           std::string(opts.algorithm)});
    }

    service::RecoveredState rec =
        service::recover_state(c.graph, wal_path, snap ? snap_path : "");

    std::ostringstream at;
    at << "kill point " << point << " (update " << k
       << (torn ? ", torn tail" : "") << (snap ? ", snapshot" : "") << "): ";
    if (torn && !rec.torn_tail_truncated) {
      out.push_back(make_div(c, opts, at.str() + "torn tail not detected"));
      continue;
    }
    if (rec.next_seq != k + 1) {
      out.push_back(make_div(c, opts,
                             at.str() + "recovered next_seq " +
                                 std::to_string(rec.next_seq) + ", want " +
                                 std::to_string(k + 1)));
      continue;
    }
    if (snap != rec.used_snapshot) {
      out.push_back(make_div(c, opts, at.str() + "snapshot use mismatch"));
      continue;
    }
    if (!rec.graph.same_structure(expect)) {
      out.push_back(make_div(
          c, opts, at.str() + "recovered graph diverges from the prefix"));
      continue;
    }
    if (snap) {
      // Cross-check the stored ADS checksum against a fresh attach on the
      // snapshot body as read back from disk.
      const auto reread = service::read_snapshot(snap_path);
      if (!reread ||
          reread->meta.ads_checksum !=
              fresh_ads_checksum(opts.algorithm, q, reread->graph)) {
        out.push_back(make_div(
            c, opts, at.str() + "snapshot ADS checksum cross-check failed"));
        continue;
      }
    }

    // Resume: re-run the offline stage on the recovered graph and finish the
    // stream; the continuation must be oracle-exact.
    const std::vector<graph::GraphUpdate> suffix(c.stream.begin() + k + 1,
                                                 c.stream.end());
    const OracleTrace tail =
        build_trace(q, rec.graph, suffix, el, /*strict=*/false);
    const auto alg2 = csm::make_algorithm(opts.algorithm);
    graph::DataGraph g2 = rec.graph;
    std::unique_ptr<engine::ParaCosm> pc;
    try {
      pc = std::make_unique<engine::ParaCosm>(
          *alg2, q, g2, service_engine_config(opts.threads));
    } catch (const std::invalid_argument&) {
      continue;
    }
    std::uint64_t pos = 0, neg = 0;
    for (const graph::GraphUpdate& upd : suffix) {
      const csm::UpdateOutcome o = pc->process(upd);
      pos += o.positive;
      neg += o.negative;
    }
    if (pos != tail.total_positive || neg != tail.total_negative ||
        !g2.same_structure(tail.final_graph)) {
      out.push_back(make_div(
          c, opts, at.str() + "post-recovery continuation diverges"));
    }
  }
  return out;
}

}  // namespace

std::string_view service_fault_name(ServiceFault f) noexcept {
  switch (f) {
    case ServiceFault::kNone: return "none";
    case ServiceFault::kCrashRecovery: return "crash-recovery";
    case ServiceFault::kForcedTimeout: return "forced-timeout";
    case ServiceFault::kShedIngest: return "shed-ingest";
    case ServiceFault::kDegradeIngest: return "degrade-ingest";
  }
  return "?";
}

std::vector<ServiceFault> all_service_faults() {
  return {ServiceFault::kNone, ServiceFault::kCrashRecovery,
          ServiceFault::kForcedTimeout, ServiceFault::kShedIngest,
          ServiceFault::kDegradeIngest};
}

std::vector<Divergence> check_service_case(const FuzzCase& c,
                                           const ServiceCheckOptions& opts) {
  if (c.queries.empty()) return {};

  service::ServiceOptions sopts;
  sopts.record_applied_order = true;
  service::FaultHooks hooks;

  switch (opts.fault) {
    case ServiceFault::kNone:
      sopts.queue_capacity = 1024;
      sopts.policy = service::OverloadPolicy::kBlock;
      return run_service_lane(c, opts, sopts, hooks, /*expect_exact=*/true,
                              /*expect_order_preserved=*/true);

    case ServiceFault::kCrashRecovery:
      return check_crash_recovery(c, opts);

    case ServiceFault::kForcedTimeout: {
      sopts.queue_capacity = 1024;
      sopts.policy = service::OverloadPolicy::kBlock;
      // Seeded forced-timeout slice; captured by value so the hook is pure.
      std::vector<bool> forced(c.stream.size());
      util::Rng rng(c.seed ^ 0x7131e0ULL);
      for (std::size_t i = 0; i < forced.size(); ++i)
        forced[i] = rng.chance(opts.timeout_rate);
      hooks.force_timeout = [forced](std::uint64_t seq) {
        return seq < forced.size() && forced[seq];
      };
      return run_service_lane(c, opts, sopts, hooks, /*expect_exact=*/false,
                              /*expect_order_preserved=*/true);
    }

    case ServiceFault::kShedIngest: {
      sopts.queue_capacity = opts.queue_capacity;
      sopts.policy = service::OverloadPolicy::kShed;
      hooks.slow_consumer = [us = opts.slow_consumer_us] {
        std::this_thread::sleep_for(std::chrono::microseconds(us));
      };
      return run_service_lane(c, opts, sopts, hooks, /*expect_exact=*/true,
                              /*expect_order_preserved=*/false);
    }

    case ServiceFault::kDegradeIngest: {
      sopts.queue_capacity = opts.queue_capacity;
      sopts.policy = service::OverloadPolicy::kDegrade;
      hooks.slow_consumer = [us = opts.slow_consumer_us] {
        std::this_thread::sleep_for(std::chrono::microseconds(us));
      };
      // Degrade admits in order (blocking) and must stay count-exact.
      return run_service_lane(c, opts, sopts, hooks, /*expect_exact=*/true,
                              /*expect_order_preserved=*/true);
    }
  }
  return {};
}

}  // namespace paracosm::verify
