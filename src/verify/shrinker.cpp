#include "verify/shrinker.hpp"

#include <algorithm>
#include <utility>

namespace paracosm::verify {

using graph::Edge;
using graph::Label;
using graph::VertexId;

namespace {

/// Rebuild a graph with the same dense vertex ids but a filtered edge set
/// (optionally with all labels collapsed to 0).
graph::DataGraph rebuild_graph(const graph::DataGraph& g,
                               const std::vector<Edge>& edges,
                               bool collapse_labels) {
  graph::DataGraph out;
  for (VertexId id = 0; id < g.vertex_capacity(); ++id) {
    // Fuzz-case initial graphs have dense alive ids; preserve them verbatim.
    out.add_vertex_with_id(id, collapse_labels ? 0 : g.label(id));
  }
  for (const Edge& e : edges) out.add_edge(e.u, e.v, collapse_labels ? 0 : e.elabel);
  return out;
}

graph::QueryGraph collapse_query_labels(const graph::QueryGraph& q) {
  std::vector<Label> labels(q.num_vertices(), 0);
  std::vector<Edge> edges;
  for (const Edge& e : q.edges()) edges.push_back({e.u, e.v, 0});
  return graph::QueryGraph(std::move(labels), std::move(edges));
}

std::vector<graph::GraphUpdate> collapse_stream_labels(
    const std::vector<graph::GraphUpdate>& stream) {
  std::vector<graph::GraphUpdate> out = stream;
  for (graph::GraphUpdate& upd : out) upd.label = 0;
  return out;
}

/// Remove query vertex `victim`, reindexing the rest; nullopt if the result
/// is no longer a usable pattern (too small or disconnected).
std::optional<graph::QueryGraph> drop_query_vertex(const graph::QueryGraph& q,
                                                   VertexId victim) {
  if (q.num_vertices() <= 2) return std::nullopt;
  std::vector<Label> labels;
  std::vector<VertexId> remap(q.num_vertices(), graph::kInvalidVertex);
  for (VertexId u = 0; u < q.num_vertices(); ++u) {
    if (u == victim) continue;
    remap[u] = static_cast<VertexId>(labels.size());
    labels.push_back(q.label(u));
  }
  std::vector<Edge> edges;
  for (const Edge& e : q.edges()) {
    if (e.u == victim || e.v == victim) continue;
    edges.push_back({remap[e.u], remap[e.v], e.elabel});
  }
  if (edges.empty()) return std::nullopt;
  graph::QueryGraph out(std::move(labels), std::move(edges));
  if (!out.connected()) return std::nullopt;
  return out;
}

class Shrinker {
 public:
  Shrinker(const FuzzCase& c, const Divergence& d, const ShrinkOptions& opts)
      : opts_(opts), best_(c), div_(d) {
    cell_.algorithms = {};
    cell_names_.push_back(d.algorithm);
    for (const std::string& n : cell_names_) cell_.algorithms.push_back(n);
    cell_.lanes = {{d.lane, d.threads, d.backend, d.adaptive}};
    cell_.factory = opts.factory;
    cell_.check_mappings = opts.check_mappings;
    cell_.stop_at_first = true;
  }

  ShrinkResult run() {
    // The divergence names one query; drop the rest up front (cheap, and it
    // makes every later predicate run single-query).
    if (best_.queries.size() > 1) {
      FuzzCase cand = best_;
      cand.queries = {best_.queries[div_.query_index]};
      accept_if_diverges(std::move(cand));
    }
    if (div_.update_index) truncate_at_divergence();

    for (std::uint32_t round = 0; round < opts_.max_rounds && !exhausted();
         ++round) {
      bool progress = false;
      progress |= ddmin_stream();
      progress |= drop_query_vertices();
      progress |= ddmin_graph_edges();
      progress |= collapse_labels();
      if (!progress) break;
    }
    return {std::move(best_), std::move(div_), runs_};
  }

 private:
  [[nodiscard]] bool exhausted() const noexcept { return runs_ >= opts_.max_runs; }

  /// Predicate: does the failing cell still diverge on `cand`? Accepts the
  /// candidate (and refreshes the divergence) when it does.
  bool accept_if_diverges(FuzzCase cand) {
    if (exhausted()) return false;
    ++runs_;
    std::vector<Divergence> divs = check_case(cand, cell_);
    if (divs.empty()) return false;
    best_ = std::move(cand);
    div_ = std::move(divs.front());
    return true;
  }

  void truncate_at_divergence() {
    // Everything after the diverging update is noise by construction.
    const std::size_t keep = static_cast<std::size_t>(*div_.update_index) + 1;
    if (keep >= best_.stream.size()) return;
    FuzzCase cand = best_;
    cand.stream.resize(keep);
    accept_if_diverges(std::move(cand));
  }

  bool ddmin_stream() {
    bool progress = false;
    std::size_t chunk = std::max<std::size_t>(1, best_.stream.size() / 2);
    while (chunk >= 1 && !exhausted()) {
      bool removed_any = false;
      for (std::size_t start = 0; start < best_.stream.size() && !exhausted();) {
        FuzzCase cand = best_;
        const std::size_t end = std::min(start + chunk, cand.stream.size());
        cand.stream.erase(cand.stream.begin() + static_cast<std::ptrdiff_t>(start),
                          cand.stream.begin() + static_cast<std::ptrdiff_t>(end));
        if (accept_if_diverges(std::move(cand))) {
          removed_any = progress = true;  // retry same offset on the shorter stream
        } else {
          start += chunk;
        }
      }
      if (chunk == 1 && !removed_any) break;
      if (!removed_any) chunk /= 2;
    }
    return progress;
  }

  bool drop_query_vertices() {
    bool progress = false;
    bool removed = true;
    while (removed && !exhausted()) {
      removed = false;
      const graph::QueryGraph& q = best_.queries.front();
      for (VertexId u = 0; u < q.num_vertices() && !exhausted(); ++u) {
        auto smaller = drop_query_vertex(best_.queries.front(), u);
        if (!smaller) continue;
        FuzzCase cand = best_;
        cand.queries.front() = std::move(*smaller);
        if (accept_if_diverges(std::move(cand))) {
          removed = progress = true;
          break;  // vertex ids shifted; restart the scan
        }
      }
    }
    return progress;
  }

  bool ddmin_graph_edges() {
    bool progress = false;
    std::vector<Edge> edges = best_.graph.edge_list();
    std::size_t chunk = std::max<std::size_t>(1, edges.size() / 2);
    while (chunk >= 1 && !exhausted() && !edges.empty()) {
      bool removed_any = false;
      for (std::size_t start = 0; start < edges.size() && !exhausted();) {
        std::vector<Edge> kept;
        kept.reserve(edges.size());
        const std::size_t end = std::min(start + chunk, edges.size());
        for (std::size_t i = 0; i < edges.size(); ++i)
          if (i < start || i >= end) kept.push_back(edges[i]);
        FuzzCase cand = best_;
        cand.graph = rebuild_graph(best_.graph, kept, false);
        if (accept_if_diverges(std::move(cand))) {
          edges = std::move(kept);
          removed_any = progress = true;
        } else {
          start += chunk;
        }
      }
      if (chunk == 1 && !removed_any) break;
      if (!removed_any) chunk /= 2;
    }
    return progress;
  }

  bool collapse_labels() {
    if (exhausted()) return false;
    FuzzCase cand = best_;
    cand.graph = rebuild_graph(best_.graph, best_.graph.edge_list(), true);
    cand.queries.front() = collapse_query_labels(best_.queries.front());
    cand.stream = collapse_stream_labels(best_.stream);
    return accept_if_diverges(std::move(cand));
  }

  ShrinkOptions opts_;
  FuzzCase best_;
  Divergence div_;
  CheckOptions cell_;
  std::vector<std::string> cell_names_;  // backs cell_.algorithms string_views
  std::uint32_t runs_ = 0;
};

}  // namespace

ShrinkResult shrink(const FuzzCase& c, const Divergence& d,
                    const ShrinkOptions& opts) {
  return Shrinker(c, d, opts).run();
}

}  // namespace paracosm::verify
