#include "verify/multi_check.hpp"

#include <cstdio>
#include <span>
#include <string>
#include <utility>

#include "csm/engine.hpp"
#include "paracosm/multi_query.hpp"

namespace paracosm::verify {

namespace {

using engine::Config;
using engine::MultiQueryEngine;
using engine::MultiStreamResult;
using graph::GraphUpdate;

struct Registration {
  std::uint32_t query_index = 0;
  std::string_view algorithm;
};

struct Totals {
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
};

/// Independent ground truth: one SequentialEngine on a private graph copy.
/// `skip` leading updates are processed (graph + ADS warmed) but not counted
/// — the "registered at the midpoint" expectation of the churn lane.
Totals sequential_totals(const FuzzCase& c, const Registration& reg,
                         const std::size_t skip, const std::size_t length) {
  auto alg = csm::make_algorithm(reg.algorithm);
  graph::DataGraph g = c.graph;
  csm::SequentialEngine eng(*alg, c.queries[reg.query_index], g);
  Totals t;
  for (std::size_t i = 0; i < length; ++i) {
    const csm::UpdateOutcome out = eng.process(c.stream[i]);
    if (i < skip) continue;
    t.positive += out.positive;
    t.negative += out.negative;
  }
  return t;
}

Divergence make_divergence(const FuzzCase& c, const Registration& reg,
                           const unsigned threads, const std::uint32_t reg_index,
                           std::string message) {
  Divergence d;
  d.seed = c.seed;
  d.algorithm = std::string(reg.algorithm);
  d.lane = Lane::kBatch;
  d.threads = threads;
  d.query_index = reg_index;
  d.message = std::move(message);
  return d;
}

std::string totals_message(const char* lane, const std::size_t handle,
                           const Totals& got_t, const Totals& want) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "multi[%s]: handle %zu got +%llu/-%llu, independent run "
                "+%llu/-%llu",
                lane, handle, static_cast<unsigned long long>(got_t.positive),
                static_cast<unsigned long long>(got_t.negative),
                static_cast<unsigned long long>(want.positive),
                static_cast<unsigned long long>(want.negative));
  return buf;
}

}  // namespace

std::vector<std::string_view> multi_check_algorithms() {
  return {"graphflow", "symbi", "turboflux", "newsp", "calig"};
}

std::vector<Divergence> check_multi_case(const FuzzCase& c,
                                         const MultiCheckOptions& opts) {
  std::vector<Divergence> out;
  if (c.queries.empty() || c.stream.empty()) return out;

  const std::vector<std::string_view> algs = multi_check_algorithms();
  std::vector<Registration> regs;
  for (std::uint32_t qi = 0; qi < c.queries.size(); ++qi)
    regs.push_back({qi, algs[qi % algs.size()]});
  if (opts.duplicate_registration) regs.push_back(regs.front());

  // Ground truth once per registration (the duplicate reuses its original's).
  std::vector<Totals> expected;
  for (std::size_t r = 0; r < regs.size(); ++r) {
    if (opts.duplicate_registration && r + 1 == regs.size()) {
      expected.push_back(expected.front());
      break;
    }
    expected.push_back(sequential_totals(c, regs[r], 0, c.stream.size()));
  }

  // Lane "static": shared engine at every thread count, plus the sharing-off
  // baseline at the first one.
  for (std::size_t variant = 0; variant < opts.thread_counts.size() + 1; ++variant) {
    const bool sharing = variant < opts.thread_counts.size();
    const unsigned threads =
        sharing ? opts.thread_counts[variant] : opts.thread_counts.front();
    graph::DataGraph g = c.graph;
    Config cfg;
    cfg.threads = threads;
    MultiQueryEngine engine(g, cfg);
    engine.set_shared_evaluation(sharing);
    std::vector<std::size_t> handles;
    for (const Registration& reg : regs)
      handles.push_back(engine.add_query(reg.algorithm, c.queries[reg.query_index]));
    const MultiStreamResult res = engine.process_stream(c.stream);
    const char* lane = sharing ? "static" : "static/no-share";
    for (std::size_t r = 0; r < regs.size(); ++r) {
      const std::size_t h = handles[r];
      const Totals got_t{res.positive[h], res.negative[h]};
      if (got_t.positive != expected[r].positive ||
          got_t.negative != expected[r].negative) {
        out.push_back(make_divergence(c, regs[r], threads,
                                      static_cast<std::uint32_t>(r),
                                      totals_message(lane, h, got_t, expected[r])));
        if (opts.stop_at_first) return out;
      }
    }
  }

  // Lane "churn": runtime add/remove at the stream midpoint.
  if (opts.runtime_churn && c.stream.size() >= 2) {
    const std::size_t mid = c.stream.size() / 2;
    const Registration& removed = regs.front();
    const Registration added{static_cast<std::uint32_t>(
                                 (regs.front().query_index + 1) % c.queries.size()),
                             algs[1 % algs.size()]};
    const Totals want_removed = sequential_totals(c, removed, 0, mid);
    const Totals want_added = sequential_totals(c, added, mid, c.stream.size());

    for (const unsigned threads : opts.thread_counts) {
      graph::DataGraph g = c.graph;
      Config cfg;
      cfg.threads = threads;
      MultiQueryEngine engine(g, cfg);
      const std::size_t h_removed =
          engine.add_query(removed.algorithm, c.queries[removed.query_index]);
      const MultiStreamResult first =
          engine.process_stream(std::span(c.stream).subspan(0, mid));

      const std::size_t h_added =
          engine.add_query(added.algorithm, c.queries[added.query_index]);
      if (!engine.remove_query(h_removed)) {
        out.push_back(make_divergence(c, removed, threads, 0,
                                      "multi[churn]: remove_query returned false "
                                      "for a live handle"));
        if (opts.stop_at_first) return out;
      }
      const MultiStreamResult second =
          engine.process_stream(std::span(c.stream).subspan(mid));

      const Totals got_removed{first.positive[h_removed] +
                                   second.positive[h_removed],
                               first.negative[h_removed] +
                                   second.negative[h_removed]};
      if (got_removed.positive != want_removed.positive ||
          got_removed.negative != want_removed.negative) {
        out.push_back(
            make_divergence(c, removed, threads, 0,
                            totals_message("churn/removed", h_removed,
                                           got_removed, want_removed)));
        if (opts.stop_at_first) return out;
      }
      const Totals got_added{second.positive[h_added], second.negative[h_added]};
      if (got_added.positive != want_added.positive ||
          got_added.negative != want_added.negative) {
        out.push_back(make_divergence(c, added, threads, 1,
                                      totals_message("churn/added", h_added,
                                                     got_added, want_added)));
        if (opts.stop_at_first) return out;
      }
    }
  }
  return out;
}

}  // namespace paracosm::verify
