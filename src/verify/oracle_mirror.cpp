#include "verify/oracle_mirror.hpp"

#include <algorithm>
#include <sstream>

#include "csm/oracle.hpp"

namespace paracosm::verify {

CanonMatch canonicalize(std::span<const Assignment> mapping) {
  CanonMatch m(mapping.begin(), mapping.end());
  std::sort(m.begin(), m.end(), [](const Assignment& a, const Assignment& b) {
    return a.qv < b.qv;
  });
  return m;
}

bool canon_less(const CanonMatch& a, const CanonMatch& b) noexcept {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const Assignment& x, const Assignment& y) {
        return x.qv != y.qv ? x.qv < y.qv : x.dv < y.dv;
      });
}

std::string canon_to_string(const CanonMatch& m) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (i) os << ' ';
    os << m[i].qv << "->" << m[i].dv;
  }
  os << '}';
  return os.str();
}

OracleMirror::OracleMirror(const graph::QueryGraph& q,
                           const graph::DataGraph& initial, bool use_edge_labels,
                           bool strict)
    : q_(q), mirror_(initial), elabels_(use_edge_labels), strict_(strict) {
  if (strict_) {
    matches_ = enumerate();
    count_ = matches_.size();
  } else {
    count_ = csm::count_all_matches(q_, mirror_, elabels_);
  }
}

std::vector<CanonMatch> OracleMirror::enumerate() const {
  std::vector<CanonMatch> out;
  csm::MatchSink sink;
  sink.on_match = [&out](std::span<const Assignment> mapping) {
    out.push_back(canonicalize(mapping));
  };
  csm::enumerate_all_matches(q_, mirror_, sink, elabels_);
  std::sort(out.begin(), out.end(), canon_less);
  return out;
}

const OracleDelta& OracleMirror::step(const graph::GraphUpdate& upd) {
  last_ = OracleDelta{};
  last_.applied = mirror_.apply(upd);
  if (!last_.applied) return last_;  // duplicate insert / missing target: no-op

  if (strict_) {
    std::vector<CanonMatch> after = enumerate();
    // matches_ and after are both sorted: the symmetric difference IS the
    // per-update delta (recompute definition of ΔM, paper §2.1).
    std::set_difference(after.begin(), after.end(), matches_.begin(),
                        matches_.end(), std::back_inserter(last_.appeared),
                        canon_less);
    std::set_difference(matches_.begin(), matches_.end(), after.begin(),
                        after.end(), std::back_inserter(last_.expired),
                        canon_less);
    last_.positive = last_.appeared.size();
    last_.negative = last_.expired.size();
    matches_ = std::move(after);
    count_ = matches_.size();
  } else {
    const std::uint64_t after = csm::count_all_matches(q_, mirror_, elabels_);
    if (after >= count_)
      last_.positive = after - count_;
    else
      last_.negative = count_ - after;
    count_ = after;
  }
  return last_;
}

OracleTrace build_trace(const graph::QueryGraph& q,
                        const graph::DataGraph& initial,
                        std::span<const graph::GraphUpdate> stream,
                        bool use_edge_labels, bool strict) {
  OracleMirror mirror(q, initial, use_edge_labels, strict);
  OracleTrace trace;
  trace.deltas.reserve(stream.size());
  for (const auto& upd : stream) {
    const OracleDelta& d = mirror.step(upd);
    trace.total_positive += d.positive;
    trace.total_negative += d.negative;
    trace.deltas.push_back(d);
  }
  trace.final_graph = mirror.graph();
  return trace;
}

void DeltaReconciler::observe(std::span<const Assignment> mapping) {
  observed_.push_back(canonicalize(mapping));
}

namespace {

std::optional<std::string> first_multiset_diff(std::vector<CanonMatch> got,
                                               std::vector<CanonMatch> want) {
  std::sort(got.begin(), got.end(), canon_less);
  std::sort(want.begin(), want.end(), canon_less);
  std::vector<CanonMatch> extra, missing;
  std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                      std::back_inserter(extra), canon_less);
  std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                      std::back_inserter(missing), canon_less);
  if (extra.empty() && missing.empty()) return std::nullopt;
  std::ostringstream os;
  os << "mapping multiset mismatch:";
  if (!missing.empty())
    os << " missing " << missing.size() << " (first "
       << canon_to_string(missing.front()) << ")";
  if (!extra.empty())
    os << " extra " << extra.size() << " (first "
       << canon_to_string(extra.front()) << ")";
  return os.str();
}

}  // namespace

std::optional<std::string> DeltaReconciler::reconcile(const OracleDelta& want,
                                                      std::uint64_t got_positive,
                                                      std::uint64_t got_negative,
                                                      bool check_mappings) {
  if (got_positive != want.positive || got_negative != want.negative) {
    std::ostringstream os;
    os << "delta count mismatch: got +" << got_positive << "/-" << got_negative
       << ", oracle +" << want.positive << "/-" << want.negative;
    return os.str();
  }
  if (check_mappings) {
    // The callback stream covers both directions: ΔM⁺ mappings are emitted
    // on insertions, ΔM⁻ mappings on deletions — reconcile the union.
    std::vector<CanonMatch> expect = want.appeared;
    expect.insert(expect.end(), want.expired.begin(), want.expired.end());
    if (auto diff = first_multiset_diff(observed_, std::move(expect)))
      return diff;
  }
  return std::nullopt;
}

std::optional<std::string> DeltaReconciler::reconcile_stream(
    const OracleTrace& want, std::uint64_t got_positive,
    std::uint64_t got_negative, bool check_mappings) {
  if (got_positive != want.total_positive ||
      got_negative != want.total_negative) {
    std::ostringstream os;
    os << "stream total mismatch: got +" << got_positive << "/-" << got_negative
       << ", oracle +" << want.total_positive << "/-" << want.total_negative;
    return os.str();
  }
  if (check_mappings) {
    std::vector<CanonMatch> expect;
    for (const OracleDelta& d : want.deltas) {
      expect.insert(expect.end(), d.appeared.begin(), d.appeared.end());
      expect.insert(expect.end(), d.expired.begin(), d.expired.end());
    }
    if (auto diff = first_multiset_diff(observed_, std::move(expect)))
      return diff;
  }
  return std::nullopt;
}

}  // namespace paracosm::verify
