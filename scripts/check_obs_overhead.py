#!/usr/bin/env python3
"""Gate the cost of compiled-in-but-idle tracing (DESIGN.md §8).

Compares bench_baseline JSON outputs from a PARACOSM_TRACE=OFF build against
a PARACOSM_TRACE=ON build running at trace level 0. Each side may supply
several runs; the minimum per side is used (the standard noise floor for
makespan-style metrics). Fails when the ON-idle build is more than
--threshold percent slower than the OFF build.

Usage:
  check_obs_overhead.py --off off1.json off2.json --on on1.json on2.json \
      [--threshold 2.0]
"""

import argparse
import json
import sys


def makespan_ms(path):
    """One scalar per run: macro algorithm time + the simulated parallel
    makespan. Micro ns/op numbers are too noisy at CI sizes to gate on."""
    with open(path) as f:
        doc = json.load(f)
    total = 0.0
    for entry in doc.get("macro_sequential", []):
        if entry.get("success"):
            total += float(entry["total_ms"])
    total += float(doc.get("scheduler_8threads", {}).get("sim_makespan_ms", 0.0))
    if total <= 0.0:
        raise SystemExit(f"{path}: no successful macro runs to gate on")
    return total


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--off", nargs="+", required=True,
                    help="bench_baseline JSON(s) from the PARACOSM_TRACE=OFF build")
    ap.add_argument("--on", dest="on_", nargs="+", required=True,
                    help="bench_baseline JSON(s) from the ON build at level 0")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="max allowed ON-idle slowdown over OFF, percent")
    args = ap.parse_args()

    off_runs = {p: makespan_ms(p) for p in args.off}
    on_runs = {p: makespan_ms(p) for p in args.on_}
    for label, runs in (("off", off_runs), ("on-idle", on_runs)):
        for path, ms in sorted(runs.items()):
            print(f"  {label:8s} {ms:10.3f} ms  {path}")

    off = min(off_runs.values())
    on = min(on_runs.values())
    delta_pct = (on - off) / off * 100.0
    print(f"makespan: off={off:.3f} ms, on-idle={on:.3f} ms, "
          f"delta={delta_pct:+.2f}% (threshold +{args.threshold:.2f}%)")

    if delta_pct > args.threshold:
        print("FAIL: idle tracing instrumentation exceeds the overhead budget",
              file=sys.stderr)
        return 1
    print("OK: idle tracing overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
