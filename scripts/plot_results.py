#!/usr/bin/env python3
"""Render ASCII charts from the bench CSVs in results/.

No third-party dependencies — works offline right after a bench sweep:

    python3 scripts/plot_results.py                # everything found
    python3 scripts/plot_results.py fig9 fig10     # by substring
"""
import csv
import pathlib
import sys

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"
WIDTH = 48


def bar(value: float, peak: float) -> str:
    if peak <= 0:
        return ""
    n = max(0, round(value / peak * WIDTH))
    return "#" * n


def load(path: pathlib.Path):
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def numeric(rows, column):
    out = []
    for row in rows:
        try:
            out.append(float(row[column]))
        except (KeyError, ValueError):
            out.append(0.0)
    return out


def plot_speedup_table(rows, label_cols, value_col, title):
    values = numeric(rows, value_col)
    peak = max(values, default=0.0)
    print(f"\n== {title} ({value_col}) ==")
    for row, value in zip(rows, values):
        label = " ".join(str(row.get(c, "")) for c in label_cols)
        print(f"  {label:<32} {value:>10.2f} |{bar(value, peak)}")


def plot_cdf(rows, title):
    print(f"\n== {title} ==")
    bal = numeric(rows, "balanced_ms")
    unb = numeric(rows, "unbalanced_ms")
    peak = max(bal + unb, default=0.0)
    for row, b, u in zip(rows, bal, unb):
        pct = row.get("cdf_percent", "?")
        print(f"  {pct:>3}%  bal {b:>9.3f} |{bar(b, peak)}")
        print(f"        unb {u:>9.3f} |{bar(u, peak)}")


HANDLERS = {
    "fig7_overall_speedup": (["dataset", "algorithm"], "speedup"),
    "fig8_table6_large_queries": (["algorithm", "query_size"], "speedup"),
    "fig9_scalability": (["algorithm", "threads"], "speedup"),
    "fig11_inter_update": (["algorithm"], "speedup"),
    "fig4_table3": (["algorithm", "query_size"], "mean_ms"),
    "table4_safe_ratio": (["dataset", "query_size"], "unsafe_percent"),
    "fig12_filtering": (["algorithm"], "label_degree_percent"),
    "theory_model": (["algorithm"], "measured"),
    "ablation_split_depth": (["split_depth"], "makespan_ms"),
    "ablation_scheduler": (["scheduler"], "makespan_ms"),
    "ablation_batch_size": (["batch_k", "mode"], "makespan_ms"),
    "baseline_recompute": (["algorithm"], "mean_ms"),
    "latency_profile": (["metric"], "sequential_us"),
    "tree_queries": (["algorithm"], "mean_ms"),
    "mixed_stream": (["algorithm"], "speedup"),
}


def main() -> int:
    if not RESULTS.is_dir():
        print(f"no results directory at {RESULTS}; run the benches first",
              file=sys.stderr)
        return 1
    wanted = sys.argv[1:]
    shown = 0
    for path in sorted(RESULTS.glob("*.csv")):
        name = path.stem
        if wanted and not any(w in name for w in wanted):
            continue
        rows = load(path)
        if not rows:
            continue
        if name == "fig10_load_balance":
            plot_cdf(rows, name)
        elif name in HANDLERS:
            labels, value = HANDLERS[name]
            plot_speedup_table(rows, labels, value, name)
        else:
            print(f"\n== {name} == ({len(rows)} rows, no chart handler)")
        shown += 1
    if shown == 0:
        print("nothing matched", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
